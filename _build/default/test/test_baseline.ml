(* Tests for the BPEL-style instance-context baseline engine (benchmark B4's
   comparison system, §2.1 of the paper). *)

module Tree = Demaq.Xml.Tree
module Ctx = Demaq.Baseline.Context_engine

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let correlate msg =
  match Tree.find_child msg "key" with
  | Some k -> Tree.tree_string_value k
  | None -> "default"

(* A step that counts deliveries per instance inside the context document
   and replies with the running count. *)
let counting_step ~context ~msg =
  ignore msg;
  let count =
    match Tree.find_child context "count" with
    | Some c -> int_of_string (Tree.tree_string_value c)
    | None -> 0
  in
  let count = count + 1 in
  let context' = Tree.elem "context" [ Tree.elem "count" [ Tree.text (string_of_int count) ] ] in
  (context', [ Tree.elem "seen" [ Tree.text (string_of_int count) ] ])

let msg k = Tree.elem "m" [ Tree.elem "key" [ Tree.text k ] ]

let test_correlation () =
  let e = Ctx.create ~correlate ~step:counting_step () in
  let out1 = Ctx.deliver e (msg "a") in
  let out2 = Ctx.deliver e (msg "a") in
  let out3 = Ctx.deliver e (msg "b") in
  check string_ "a first" "1" (Tree.tree_string_value (List.hd out1));
  check string_ "a second accumulates" "2" (Tree.tree_string_value (List.hd out2));
  check string_ "b independent" "1" (Tree.tree_string_value (List.hd out3));
  check int_ "two instances" 2 (Ctx.instance_count e)

let test_dehydration_costs_counted () =
  let e = Ctx.create ~dehydrate:true ~correlate ~step:counting_step () in
  ignore (Ctx.deliver e (msg "a"));
  ignore (Ctx.deliver e (msg "a"));
  let s = Ctx.stats e in
  check int_ "deliveries" 2 s.Ctx.deliveries;
  (* first delivery finds no stored context; the second rehydrates *)
  check int_ "rehydrations" 1 s.Ctx.rehydrations;
  check bool_ "serialization bytes counted" true (s.Ctx.dehydrated_bytes > 0)

let test_live_mode_no_serialization () =
  let e = Ctx.create ~dehydrate:false ~correlate ~step:counting_step () in
  ignore (Ctx.deliver e (msg "a"));
  ignore (Ctx.deliver e (msg "a"));
  let s = Ctx.stats e in
  check int_ "no rehydrations" 0 s.Ctx.rehydrations;
  check int_ "no bytes" 0 s.Ctx.dehydrated_bytes;
  check string_ "state accumulates in memory" "3"
    (Tree.tree_string_value (List.hd (Ctx.deliver e (msg "a"))))

let test_modes_agree () =
  let run dehydrate =
    let e = Ctx.create ~dehydrate ~correlate ~step:counting_step () in
    List.concat_map
      (fun k -> List.map Tree.tree_string_value (Ctx.deliver e (msg k)))
      [ "a"; "b"; "a"; "a"; "b" ]
  in
  check bool_ "dehydrated = live outputs" true (run true = run false)

let test_custom_initial_context () =
  let initial = Tree.elem "context" [ Tree.elem "count" [ Tree.text "10" ] ] in
  let e = Ctx.create ~initial ~correlate ~step:counting_step () in
  check string_ "starts from initial" "11"
    (Tree.tree_string_value (List.hd (Ctx.deliver e (msg "z"))))

let suite =
  [
    ("correlation creates instances", `Quick, test_correlation);
    ("dehydration costs counted", `Quick, test_dehydration_costs_counted);
    ("live mode avoids serialization", `Quick, test_live_mode_no_serialization);
    ("modes agree on behaviour", `Quick, test_modes_agree);
    ("custom initial context", `Quick, test_custom_initial_context);
  ]

(* Tests for the simulated communication subsystem. *)

module Tree = Demaq.Xml.Tree
module Net = Demaq.Network
module Soap = Demaq.Net.Soap

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let payload = Tree.elem "ping" [ Tree.text "hello" ]

let echo_endpoint net name =
  Net.register net ~name ~handler:(fun ~sender body ->
      [ Tree.elem "pong" [ Tree.text (Tree.tree_string_value body ^ "/" ^ sender) ] ])

let test_delivery () =
  let net = Net.create () in
  echo_endpoint net "svc";
  match Net.send net ~from_:"me" ~to_:"svc" payload with
  | Net.Sent [ reply ] ->
    check string_ "reply content" "hello/me" (Tree.tree_string_value reply)
  | _ -> Alcotest.fail "expected one reply"

let test_soap_roundtrip () =
  (* The wire format is a SOAP envelope that parses back to the payload. *)
  let env = Soap.envelope ~headers:[ Soap.header_field "From" "me" ] payload in
  let wire = Demaq.xml_to_string env in
  let parsed = Demaq.xml wire in
  check bool_ "body extracted" true (Tree.equal_tree payload (Soap.body parsed));
  check int_ "headers" 1 (List.length (Soap.headers parsed));
  check bool_ "not a fault" true (not (Soap.is_fault parsed));
  let fault = Soap.envelope (Soap.fault ~code:"Receiver" ~reason:"boom") in
  check bool_ "fault detected" true (Soap.is_fault fault)

let test_soap_passthrough () =
  (* non-envelope trees pass through Soap.body unchanged *)
  check bool_ "passthrough" true (Tree.equal_tree payload (Soap.body payload))

let test_name_resolution_failure () =
  let net = Net.create () in
  match Net.send net ~from_:"me" ~to_:"nowhere" payload with
  | Net.Failed (Net.Name_resolution "nowhere") -> ()
  | _ -> Alcotest.fail "expected name resolution failure"

let test_disconnected () =
  let net = Net.create () in
  echo_endpoint net "svc";
  Net.set_connected net "svc" false;
  (match Net.send net ~from_:"me" ~to_:"svc" payload with
   | Net.Failed (Net.Disconnected "svc") -> ()
   | _ -> Alcotest.fail "expected disconnect");
  Net.set_connected net "svc" true;
  match Net.send net ~from_:"me" ~to_:"svc" payload with
  | Net.Sent _ -> ()
  | _ -> Alcotest.fail "expected recovery"

let test_best_effort_drops () =
  let net = Net.create ~seed:1 () in
  echo_endpoint net "svc";
  Net.set_drop_rate net "svc" 1.0;
  (match Net.send net ~from_:"me" ~to_:"svc" payload with
   | Net.Lost -> ()
   | _ -> Alcotest.fail "expected loss");
  let s = Net.stats net in
  check int_ "dropped" 1 s.Net.dropped;
  check int_ "no failure recorded for best effort" 0 s.Net.failures

let test_reliable_retries () =
  let net = Net.create ~seed:7 ~max_retries:50 () in
  echo_endpoint net "svc";
  Net.set_drop_rate net "svc" 0.7;
  (* with 50 retries at 70% drop, delivery is essentially certain *)
  (match Net.send net ~reliable:true ~from_:"me" ~to_:"svc" payload with
   | Net.Sent _ -> ()
   | _ -> Alcotest.fail "expected reliable delivery");
  check bool_ "retried" true ((Net.stats net).Net.attempts > 1)

let test_reliable_timeout () =
  let net = Net.create ~max_retries:3 () in
  echo_endpoint net "svc";
  Net.set_drop_rate net "svc" 1.0;
  match Net.send net ~reliable:true ~from_:"me" ~to_:"svc" payload with
  | Net.Failed (Net.Timeout "svc") ->
    check int_ "bounded attempts" 3 (Net.stats net).Net.attempts
  | _ -> Alcotest.fail "expected timeout"

let test_wire_log () =
  let net = Net.create () in
  echo_endpoint net "svc";
  ignore (Net.send net ~from_:"me" ~to_:"svc" payload);
  match Net.wire_log net with
  | [ wire ] ->
    let parsed = Demaq.xml wire in
    check bool_ "wire is SOAP" true (Tree.equal_tree payload (Soap.body parsed))
  | l -> Alcotest.failf "expected one wire entry, got %d" (List.length l)

let test_handler_sees_parsed_tree () =
  (* Content with escapes must arrive decoded on the far side. *)
  let net = Net.create () in
  let received = ref None in
  Net.register net ~name:"svc" ~handler:(fun ~sender:_ body ->
      received := Some body;
      []);
  let tricky = Tree.elem "m" ~attrs:[ ("a", "x<y&z") ] [ Tree.text "<&>" ] in
  (match Net.send net ~from_:"me" ~to_:"svc" tricky with
   | Net.Sent [] -> ()
   | _ -> Alcotest.fail "expected empty reply");
  check bool_ "roundtripped" true (Tree.equal_tree tricky (Option.get !received))

let test_stats_bytes () =
  let net = Net.create () in
  echo_endpoint net "svc";
  ignore (Net.send net ~from_:"me" ~to_:"svc" payload);
  check bool_ "bytes counted" true ((Net.stats net).Net.bytes > 0)

let test_unregister () =
  let net = Net.create () in
  echo_endpoint net "svc";
  Net.unregister net "svc";
  match Net.send net ~from_:"me" ~to_:"svc" payload with
  | Net.Failed (Net.Name_resolution _) -> ()
  | _ -> Alcotest.fail "expected resolution failure after unregister"

let suite =
  [
    ("delivery with reply", `Quick, test_delivery);
    ("soap roundtrip", `Quick, test_soap_roundtrip);
    ("soap passthrough", `Quick, test_soap_passthrough);
    ("name resolution failure", `Quick, test_name_resolution_failure);
    ("disconnect and reconnect", `Quick, test_disconnected);
    ("best effort drops silently", `Quick, test_best_effort_drops);
    ("reliable retries", `Quick, test_reliable_retries);
    ("reliable timeout", `Quick, test_reliable_timeout);
    ("wire log", `Quick, test_wire_log);
    ("wire roundtrip decoding", `Quick, test_handler_sees_parsed_tree);
    ("bytes counted", `Quick, test_stats_bytes);
    ("unregister", `Quick, test_unregister);
  ]

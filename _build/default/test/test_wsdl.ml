(* Tests for the miniature WSDL model and gateway interface validation
   (§2.1.2: "we import the supplier's interface definition from a WSDL
   file"). *)

module Wsdl = Demaq.Net.Wsdl
module Net = Demaq.Network
module Tree = Demaq.Xml.Tree
module Message = Demaq.Message
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let supplier_wsdl = {|
<definitions name="SupplierService">
  <portType name="CapacityRequestPort">
    <operation name="requestCapacity">
      <input element="capacityRequest"/>
      <output element="capacityResult"/>
    </operation>
    <operation name="cancel">
      <input element="cancelRequest"/>
    </operation>
  </portType>
  <portType name="StatusPort">
    <operation name="ping">
      <input element="statusPing"/>
      <output element="statusPong"/>
    </operation>
  </portType>
</definitions>
|}

(* ---- model ---- *)

let parsed () =
  match Wsdl.parse supplier_wsdl with
  | Ok w -> w
  | Error e -> Alcotest.fail e

let test_parse () =
  let w = parsed () in
  check string_ "service name" "SupplierService" w.Wsdl.service;
  check int_ "two ports" 2 (List.length w.Wsdl.ports);
  let port = Option.get (Wsdl.find_port w "CapacityRequestPort") in
  check int_ "two operations" 2 (List.length port.Wsdl.operations);
  check bool_ "accepts request" true (Wsdl.accepts_input port "capacityRequest");
  check bool_ "accepts cancel" true (Wsdl.accepts_input port "cancelRequest");
  check bool_ "rejects other" false (Wsdl.accepts_input port "statusPing");
  check bool_ "unknown port" true (Wsdl.find_port w "Nope" = None)

let test_parse_errors () =
  check bool_ "not wsdl" true (Result.is_error (Wsdl.parse "<other/>"));
  check bool_ "no ports" true
    (Result.is_error (Wsdl.parse "<definitions name=\"x\"><junk/></definitions>"));
  check bool_ "bad xml" true (Result.is_error (Wsdl.parse "<definitions"))

(* ---- engine integration ---- *)

let program = {|
  create queue work kind basic mode persistent
  create queue errs kind basic mode persistent
  create queue supplier kind outgoingGateway mode persistent
    interface supplier.wsdl port CapacityRequestPort
  create rule sendGood for work errorqueue errs
    if (//good) then do enqueue <capacityRequest><id>1</id></capacityRequest> into supplier
  create rule sendBad for work errorqueue errs
    if (//bad) then do enqueue <wrongMessage/> into supplier
|}

let make () =
  let net = Net.create () in
  let delivered = ref 0 in
  Net.register net ~name:"supplier" ~handler:(fun ~sender:_ _ ->
      incr delivered;
      []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"supplier" ~endpoint:"supplier" ();
  (match S.register_interface srv ~file:"supplier.wsdl" supplier_wsdl with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (srv, delivered)

let inject srv payload =
  match S.inject srv ~queue:"work" (Demaq.xml payload) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s" (Demaq.Mq.Queue_manager.error_to_string e)

let test_valid_input_transmitted () =
  let srv, delivered = make () in
  inject srv "<good/>";
  ignore (S.run srv);
  check int_ "delivered" 1 !delivered;
  check int_ "no errors" 0 (List.length (S.queue_contents srv "errs"))

let test_invalid_input_rejected () =
  let srv, delivered = make () in
  inject srv "<bad/>";
  ignore (S.run srv);
  check int_ "not delivered" 0 !delivered;
  match S.queue_contents srv "errs" with
  | [ err ] ->
    let body = Demaq.xml_to_string (Message.body err) in
    let has sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length body && (String.sub body i n = sub || go (i + 1)) in
      go 0
    in
    check bool_ "interfaceViolation kind" true (has "<interfaceViolation/>");
    check bool_ "expected inputs listed" true (has "capacityRequest");
    check bool_ "routed to creating rule's errorqueue" true (has "<rule>sendBad</rule>")
  | l -> Alcotest.failf "expected one error, got %d" (List.length l)

let test_unregistered_interface_is_permissive () =
  (* without register_interface the declaration is informational only *)
  let net = Net.create () in
  let delivered = ref 0 in
  Net.register net ~name:"supplier" ~handler:(fun ~sender:_ _ ->
      incr delivered;
      []);
  let srv = S.deploy ~network:net program in
  S.bind_gateway srv ~queue:"supplier" ~endpoint:"supplier" ();
  inject srv "<bad/>";
  ignore (S.run srv);
  check int_ "sent without validation" 1 !delivered

let test_register_bad_wsdl () =
  let srv, _ = make () in
  check bool_ "rejected" true
    (Result.is_error (S.register_interface srv ~file:"x.wsdl" "<oops/>"))

let suite =
  [
    ("wsdl parse", `Quick, test_parse);
    ("wsdl parse errors", `Quick, test_parse_errors);
    ("valid input transmitted", `Quick, test_valid_input_transmitted);
    ("invalid input becomes error message", `Quick, test_invalid_input_rejected);
    ("unregistered interface is permissive", `Quick, test_unregistered_interface_is_permissive);
    ("register bad wsdl", `Quick, test_register_bad_wsdl);
  ]

(* Time-based behaviour (paper §2.1.3 and the §5 discussion of time-based
   conditions): echo-queue timers, periodic self-rearming ticks, deadline
   predicates over the virtual clock, and timer ordering. *)

module Value = Demaq.Value
module Message = Demaq.Message
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let xml = Demaq.xml

let bodies srv q =
  List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)

let inject_ok ?props srv queue payload =
  match S.inject srv ?props ~queue (xml payload) with
  | Ok m -> m
  | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e)

(* A deadline sweeper: tasks carry an absolute deadline tick in their body;
   a periodic tick sweeps the pending queue with a time-based condition
   comparing against fn:current-dateTime() (the virtual clock). *)
let sweeper_program = {|
  create queue pending kind basic mode persistent
  create queue ticks kind echo mode persistent
  create queue sweeper kind basic mode persistent
  create queue expired kind basic mode persistent

  create rule sweep for sweeper
    if (//tick) then
      for $t in qs:queue("pending")//task[number(deadline) <= current-dateTime()]
                [not(qs:queue("expired")//id = id)]
      return do enqueue <expiredTask>{$t/id}</expiredTask> into expired

  create rule rearm for sweeper
    if (//tick) then
      do enqueue <tick/> into ticks
        with timeout value 10 with target value "sweeper"
|}

let arm srv =
  ignore
    (inject_ok srv
       ~props:[ ("timeout", Value.Integer 10); ("target", Value.String "sweeper") ]
       "ticks" "<tick/>")

let test_deadline_sweeper () =
  let srv = S.deploy sweeper_program in
  arm srv;
  ignore (inject_ok srv "pending" "<task><id>t1</id><deadline>15</deadline></task>");
  ignore (inject_ok srv "pending" "<task><id>t2</id><deadline>55</deadline></task>");
  ignore (S.run srv);
  check int_ "nothing expired yet" 0 (List.length (bodies srv "expired"));
  (* tick at ~10: t1 not due (deadline 15); tick at ~20: t1 due *)
  S.advance_time srv 25;
  ignore (S.run srv);
  check bool_ "t1 expired" true
    (bodies srv "expired" = [ "<expiredTask><id>t1</id></expiredTask>" ]);
  (* later, t2 passes its deadline too *)
  S.advance_time srv 40;
  ignore (S.run srv);
  check int_ "both expired" 2 (List.length (bodies srv "expired"))

let test_periodic_rearm () =
  let srv = S.deploy sweeper_program in
  arm srv;
  ignore (S.run srv);
  (* each advance of 10+ releases exactly one tick which re-arms itself *)
  for _ = 1 to 5 do
    S.advance_time srv 12;
    ignore (S.run srv)
  done;
  check bool_ "timer kept firing" true ((S.stats srv).S.timers_fired >= 5)

let test_timer_ordering () =
  (* two timers with different timeouts must fire in due order even when
     released by a single large time jump *)
  let srv =
    S.deploy
      {|create queue timers kind echo mode persistent
        create queue log kind basic mode persistent|}
  in
  let send label timeout =
    ignore
      (inject_ok srv
         ~props:[ ("timeout", Value.Integer timeout); ("target", Value.String "log") ]
         "timers"
         (Printf.sprintf "<fire>%s</fire>" label))
  in
  send "slow" 50;
  send "fast" 5;
  send "medium" 20;
  ignore (S.run srv);
  S.advance_time srv 100;
  ignore (S.run srv);
  check bool_ "due order preserved" true
    (bodies srv "log"
     = [ "<fire>fast</fire>"; "<fire>medium</fire>"; "<fire>slow</fire>" ])

let test_current_datetime_advances () =
  let srv =
    S.deploy
      {|create queue in kind basic mode persistent
        create queue out kind basic mode persistent
        create rule stamp for in
          if (//m) then do enqueue <at>{current-dateTime()}</at> into out|}
  in
  ignore (inject_ok srv "in" "<m/>");
  ignore (S.run srv);
  S.advance_time srv 500;
  ignore (inject_ok srv "in" "<m/>");
  ignore (S.run srv);
  match bodies srv "out" with
  | [ a; b ] ->
    let tick s = int_of_string (String.sub s 4 (String.length s - 9)) in
    check bool_ "clock moved forward by >= 500" true (tick b - tick a >= 500)
  | l -> Alcotest.failf "expected two stamps, got %d" (List.length l)

let test_timestamp_property_available () =
  (* the system timestamp property supports age computations in rules *)
  let srv =
    S.deploy
      {|create queue in kind basic mode persistent
        create queue out kind basic mode persistent
        create rule age for in
          if (//m) then
            do enqueue <age>{current-dateTime() - number(qs:property("system-timestamp"))}</age>
              into out|}
  in
  ignore (inject_ok srv "in" "<m/>");
  S.advance_time srv 42;
  ignore (S.run srv);
  match bodies srv "out" with
  | [ a ] -> check bool_ ("age computed: " ^ a) true (a = "<age>42</age>")
  | l -> Alcotest.failf "expected one message, got %d" (List.length l)

let test_zero_timeout_fires_on_next_advance () =
  let srv =
    S.deploy
      {|create queue timers kind echo mode persistent
        create queue log kind basic mode persistent|}
  in
  ignore
    (inject_ok srv
       ~props:[ ("timeout", Value.Integer 0); ("target", Value.String "log") ]
       "timers" "<now/>");
  ignore (S.run srv);
  S.advance_time srv 0;
  ignore (S.run srv);
  check int_ "fired at once" 1 (List.length (bodies srv "log"))

let suite =
  [
    ("deadline sweeper (§5 time-based conditions)", `Quick, test_deadline_sweeper);
    ("periodic self-rearming tick", `Quick, test_periodic_rearm);
    ("timers fire in due order", `Quick, test_timer_ordering);
    ("current-dateTime advances", `Quick, test_current_datetime_advances);
    ("message age from system timestamp", `Quick, test_timestamp_property_available);
    ("zero timeout", `Quick, test_zero_timeout_fires_on_next_advance);
  ]

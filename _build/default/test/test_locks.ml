(* Tests for the lock manager: compatibility, upgrades, deadlock detection. *)

module Lock = Demaq.Store.Lock_manager

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let q = Lock.Queue_lock "q"
let s1 = Lock.Slice_lock ("orders", "k1")
let s2 = Lock.Slice_lock ("orders", "k2")

let granted = function Lock.Granted -> true | Lock.Conflict _ -> false

let test_shared_compatible () =
  let t = Lock.create () in
  check bool_ "t1 S" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "t2 S" true (granted (Lock.acquire t ~txn:2 q Lock.Shared));
  match Lock.acquire t ~txn:3 q Lock.Exclusive with
  | Lock.Conflict holders ->
    check bool_ "both holders reported" true
      (List.sort compare holders = [ 1; 2 ])
  | Lock.Granted -> Alcotest.fail "X granted over S holders"

let test_exclusive_blocks () =
  let t = Lock.create () in
  check bool_ "t1 X" true (granted (Lock.acquire t ~txn:1 q Lock.Exclusive));
  check bool_ "t2 S conflicts" false (granted (Lock.acquire t ~txn:2 q Lock.Shared));
  check bool_ "t2 X conflicts" false (granted (Lock.acquire t ~txn:2 q Lock.Exclusive))

let test_reentrant_and_upgrade () =
  let t = Lock.create () in
  check bool_ "S" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "re-acquire S" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "upgrade to X" true (granted (Lock.acquire t ~txn:1 q Lock.Exclusive));
  check bool_ "other blocked" false (granted (Lock.acquire t ~txn:2 q Lock.Shared));
  (* after upgrade, re-acquiring S must not silently downgrade *)
  check bool_ "S after X" true (granted (Lock.acquire t ~txn:1 q Lock.Shared));
  check bool_ "other still blocked" false (granted (Lock.acquire t ~txn:2 q Lock.Shared))

let test_upgrade_blocked_by_other_reader () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 q Lock.Shared);
  ignore (Lock.acquire t ~txn:2 q Lock.Shared);
  check bool_ "upgrade blocked" false (granted (Lock.acquire t ~txn:1 q Lock.Exclusive))

let test_release_all () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 q Lock.Exclusive);
  ignore (Lock.acquire t ~txn:1 s1 Lock.Exclusive);
  check int_ "held" 2 (List.length (Lock.held t ~txn:1));
  Lock.release_all t ~txn:1;
  check int_ "released" 0 (List.length (Lock.held t ~txn:1));
  check bool_ "free" true (granted (Lock.acquire t ~txn:2 q Lock.Exclusive));
  check int_ "table compacted" 1 (Lock.active_locks t)

let test_slice_independence () =
  (* §4.3: slice locks do not conflict across different keys. *)
  let t = Lock.create () in
  check bool_ "t1 slice k1" true (granted (Lock.acquire t ~txn:1 s1 Lock.Exclusive));
  check bool_ "t2 slice k2" true (granted (Lock.acquire t ~txn:2 s2 Lock.Exclusive));
  check bool_ "t2 slice k1 conflicts" false (granted (Lock.acquire t ~txn:2 s1 Lock.Exclusive))

let test_deadlock_detection () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 s1 Lock.Exclusive);
  ignore (Lock.acquire t ~txn:2 s2 Lock.Exclusive);
  (* txn 1 waits for s2 (held by 2) *)
  Lock.wait_on t ~txn:1 s2;
  (* if txn 2 now waited for s1 (held by 1) we'd have a cycle *)
  check bool_ "cycle detected" true (Lock.would_deadlock t ~txn:2 s1);
  (* no cycle for an independent transaction *)
  check bool_ "no cycle for t3" false (Lock.would_deadlock t ~txn:3 s1);
  Lock.stop_waiting t ~txn:1;
  check bool_ "cycle gone after stop_waiting" false (Lock.would_deadlock t ~txn:2 s1)

let test_deadlock_three_party () =
  let t = Lock.create () in
  let r1 = Lock.Queue_lock "a"
  and r2 = Lock.Queue_lock "b"
  and r3 = Lock.Queue_lock "c" in
  ignore (Lock.acquire t ~txn:1 r1 Lock.Exclusive);
  ignore (Lock.acquire t ~txn:2 r2 Lock.Exclusive);
  ignore (Lock.acquire t ~txn:3 r3 Lock.Exclusive);
  Lock.wait_on t ~txn:1 r2;
  Lock.wait_on t ~txn:2 r3;
  check bool_ "3-cycle detected" true (Lock.would_deadlock t ~txn:3 r1)

let test_resource_names () =
  check bool_ "queue" true (Lock.resource_to_string q = "queue:q");
  check bool_ "slice" true (Lock.resource_to_string s1 = "slice:orders/k1");
  check bool_ "message" true
    (Lock.resource_to_string (Lock.Message_lock 7) = "message:7")

let suite =
  [
    ("shared locks compatible", `Quick, test_shared_compatible);
    ("exclusive blocks", `Quick, test_exclusive_blocks);
    ("re-entrant and upgrade", `Quick, test_reentrant_and_upgrade);
    ("upgrade blocked by other reader", `Quick, test_upgrade_blocked_by_other_reader);
    ("release all", `Quick, test_release_all);
    ("slice lock independence", `Quick, test_slice_independence);
    ("deadlock detection", `Quick, test_deadlock_detection);
    ("three-party deadlock", `Quick, test_deadlock_three_party);
    ("resource names", `Quick, test_resource_names);
  ]

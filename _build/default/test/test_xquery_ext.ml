(* Tests for the extended XQuery surface: computed constructors, positional
   for-variables, node comparisons, intersect/except, cast/castable, and
   the additional function library entries. *)

module Tree = Demaq.Xml.Tree
module Value = Demaq.Value
module Parser = Demaq.Xquery.Parser
module Eval = Demaq.Xquery.Eval
module Context = Demaq.Xquery.Context

let check = Alcotest.check
let string_ = Alcotest.string

let default_ctx =
  Demaq.xml
    "<root><a id=\"1\">first</a><b>second</b><a id=\"2\">third</a></root>"

let show v =
  String.concat ";"
    (List.map
       (function
         | Value.Atom a -> Value.string_of_atomic a
         | Value.Node n -> (
           match Tree.node_tree n with
           | Some t -> Demaq.xml_to_string t
           | None -> "@" ^ Tree.string_value n))
       v)

let expect src expected () =
  check string_ src expected (show (fst (Eval.run ~context:default_ctx src)))

let expect_error src () =
  match Eval.run ~context:default_ctx src with
  | _ -> Alcotest.failf "expected evaluation error for %s" src
  | exception Context.Eval_error _ -> ()

let cases =
  [
    (* computed constructors *)
    ("computed element, braced name", expect "element {'env'} {1 + 1}" "<env>2</env>");
    ("computed element, literal name", expect "element note {'hi'}" "<note>hi</note>");
    ("computed element nests nodes", expect "element wrap {//b}" "<wrap><b>second</b></wrap>");
    ("computed element empty content", expect "element hollow {}" "<hollow/>");
    ("computed attribute inside element",
     expect "element tagged {attribute {'k'} {'v'}, //b}"
       {|<tagged k="v"><b>second</b></tagged>|});
    ("computed attribute in direct constructor",
     expect "<x>{attribute n {40 + 2}}</x>" {|<x n="42"/>|});
    ("computed attribute name from expression",
     expect "element e {attribute {concat('a', 'b')} {1}}" {|<e ab="1"/>|});
    ("computed text", expect "element t {text {('x', 'y')}}" "<t>x y</t>");
    ("computed text standalone", expect "string(text {'plain'})" "plain");
    ("computed element is navigable",
     expect "count(element box {//a}/a)" "2");
    (* positional variables *)
    ("for at simple", expect "for $x at $i in ('a', 'b', 'c') return $i" "1;2;3");
    ("for at used in result",
     expect "string-join(for $x at $i in ('p', 'q') return concat($i, ':', $x), ',')"
       "1:p,2:q");
    ("for at with where", expect "for $x at $i in (9, 8, 7) where $i = 2 return $x" "8");
    ("for at on nodes", expect "for $n at $i in //a return $i * 10" "10;20");
    (* node comparisons *)
    ("is on same node", expect "(//a)[1] is (//a)[1]" "true");
    ("is on distinct nodes", expect "(//a)[1] is (//a)[2]" "false");
    ("precedes", expect "(//a)[1] << //b" "true");
    ("follows", expect "(//a)[2] >> //b" "true");
    ("node comparison with empty", expect "//missing is //b" "");
    (* intersect / except *)
    ("intersect", expect "count((//a | //b) intersect //a)" "2");
    ("except", expect "string((//a | //b) except //a)" "second");
    ("except everything", expect "count(//a except //a)" "0");
    ("intersect docorder", expect "string(((//b | //a) intersect //node())[1])" "first");
    (* cast / castable *)
    ("cast to integer", expect "'42' cast as xs:integer" "42");
    ("cast to boolean", expect "1 cast as xs:boolean" "true");
    ("cast node to decimal", expect "(//a)[1]/@id cast as xs:decimal" "1");
    ("cast empty", expect "() cast as xs:integer" "");
    ("castable yes", expect "'42' castable as xs:integer" "true");
    ("castable no", expect "'pear' castable as xs:integer" "false");
    ("castable empty", expect "() castable as xs:string" "true");
    (* new functions *)
    ("translate", expect "translate('bare', 'abr', 'AB')" "BAe");
    ("replace literal", expect "replace('a-b-c', '-', '+')" "a+b+c");
    ("matches substring", expect "matches('hello', 'ell')" "true");
    ("matches no", expect "matches('hello', 'xyz')" "false");
    ("compare", expect "compare('a', 'b')" "-1");
    ("deep-equal true", expect "deep-equal(<a><b/></a>, <a><b/></a>)" "true");
    ("deep-equal false", expect "deep-equal(<a><b/></a>, <a><c/></a>)" "false");
    ("deep-equal atoms", expect "deep-equal((1, 'x'), (1, 'x'))" "true");
    ("zero-or-one ok", expect "zero-or-one(//b)" "<b>second</b>");
    ("one-or-more ok", expect "count(one-or-more(//a))" "2");
    ("exactly-one ok", expect "string(exactly-one(//b))" "second");
  ]

let errors =
  [
    ("cast failure", expect_error "'x' cast as xs:integer");
    ("cast multi-item", expect_error "(1, 2) cast as xs:integer");
    ("zero-or-one too many", expect_error "zero-or-one(//a)");
    ("one-or-more empty", expect_error "one-or-more(//missing)");
    ("exactly-one empty", expect_error "exactly-one(//missing)");
    ("computed element bad name", expect_error "element {''} {1}");
    ("node comparison non-node", expect_error "1 is 2");
  ]

(* parse/print roundtrips of the new syntax *)
let pp_cases =
  [
    "element {'a'} {1}";
    "attribute {'k'} {'v'}";
    "text {'x'}";
    "for $x at $i in (1, 2) return ($i, $x)";
    "(//a)[1] is (//a)[2]";
    "//a intersect //b";
    "//a except //b";
    "'5' cast as xs:integer";
    "'5' castable as xs:decimal";
  ]

let test_pp_roundtrip () =
  List.iter
    (fun src ->
      let printed = Demaq.Xquery.Pp.to_string (Parser.parse src) in
      match Parser.parse printed with
      | _ -> ()
      | exception Parser.Syntax_error { msg; _ } ->
        Alcotest.failf "re-parse of %S (from %S) failed: %s" printed src msg)
    pp_cases

(* computed constructors usable from QML rules *)
let test_computed_in_rule () =
  let srv =
    Demaq.deploy
      {|create queue in kind basic mode persistent
        create queue out kind basic mode persistent
        create rule shape for in
          if (//m) then
            do enqueue element {string(//m/kind)} {
              attribute {'n'} {count(//m/*)}, //m/payload/*
            } into out|}
  in
  (match Demaq.inject srv ~queue:"in"
           (Demaq.xml "<m><kind>report</kind><payload><x/></payload></m>")
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Demaq.Mq.Queue_manager.error_to_string e));
  ignore (Demaq.Server.run srv);
  match Demaq.Server.queue_contents srv "out" with
  | [ m ] ->
    check string_ "constructed message" {|<report n="2"><x/></report>|}
      (Demaq.xml_to_string (Demaq.Message.body m))
  | l -> Alcotest.failf "expected one message, got %d" (List.length l)

let suite =
  List.map (fun (n, f) -> (n, `Quick, f)) cases
  @ List.map (fun (n, f) -> (n, `Quick, f)) errors
  @ [
      ("pp roundtrip of new syntax", `Quick, test_pp_roundtrip);
      ("computed constructors in rules", `Quick, test_computed_in_rule);
    ]

(* ---- instance of ---- *)

let instance_cases =
  [
    ("int instance of integer", expect "3 instance of xs:integer" "true");
    ("int instance of decimal (derived)", expect "3 instance of xs:decimal" "true");
    ("int not string", expect "3 instance of xs:string" "false");
    ("string instance", expect "'x' instance of xs:string" "true");
    ("boolean instance", expect "true() instance of xs:boolean" "true");
    ("node atomization is untyped", expect
       "data(//b) instance of xs:untypedAtomic" "true");
    ("untyped not string", expect "data(//b) instance of xs:string" "false");
    ("any atomic", expect "(1, 'x', true()) instance of xs:anyAtomicType+" "true");
    ("element test", expect "//b instance of element()" "true");
    ("element name test", expect "//b instance of element(b)" "true");
    ("element wrong name", expect "//b instance of element(c)" "false");
    ("attribute test", expect "(//a)[1]/@id instance of attribute()" "true");
    ("attribute name test", expect "(//a)[1]/@id instance of attribute(id)" "true");
    ("text test", expect "//b/text() instance of text()" "true");
    ("node test mixed", expect "(//a, //b) instance of node()+" "true");
    ("item star", expect "(1, //b) instance of item()*" "true");
    ("document node", expect "root(//b) instance of document-node()" "true");
    ("empty-sequence yes", expect "() instance of empty-sequence()" "true");
    ("empty-sequence no", expect "1 instance of empty-sequence()" "false");
    ("occurrence one fails on empty", expect "() instance of xs:integer" "false");
    ("occurrence optional on empty", expect "() instance of xs:integer?" "true");
    ("occurrence star on empty", expect "() instance of element()*" "true");
    ("occurrence plus needs one", expect "() instance of xs:integer+" "false");
    ("occurrence one fails on many", expect "(1, 2) instance of xs:integer" "false");
    ("occurrence plus on many", expect "(1, 2) instance of xs:integer+" "true");
    ("mixed sequence fails atomic", expect "(1, 'x') instance of xs:integer+" "false");
    ("instance in condition", expect
       "if (//b instance of element()) then 'n' else 'a'" "n");
  ]

let test_instance_pp_roundtrip () =
  List.iter
    (fun src ->
      let printed = Demaq.Xquery.Pp.to_string (Parser.parse src) in
      match Parser.parse printed with
      | _ -> ()
      | exception Parser.Syntax_error { msg; _ } ->
        Alcotest.failf "re-parse of %S (from %S): %s" printed src msg)
    [
      "1 instance of xs:integer";
      "//b instance of element(b)+";
      "() instance of empty-sequence()";
      "(1, 2) instance of item()*";
    ]

(* static analysis catches free variables at deploy time *)
let test_free_variable_rejected () =
  match
    Demaq.deploy
      {|create queue a kind basic mode persistent
        create rule r for a if ($undefined) then do enqueue <x/> into a|}
  with
  | _ -> Alcotest.fail "expected deployment error"
  | exception Demaq.Server.Deployment_error msg ->
    Alcotest.(check bool) "names the variable" true
      (let sub = "$undefined" in
       let n = String.length sub in
       let rec go i = i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1)) in
       go 0)

let test_bound_variables_accepted () =
  (* all binder forms: let, for, for-at, quantifiers *)
  let srv =
    Demaq.deploy
      {|create queue a kind basic mode persistent
        create rule r for a
          if (some $s in //x satisfies $s = 1) then
            for $v at $i in //y
            let $w := $v
            return do enqueue <ok>{$w}{$i}</ok> into a|}
  in
  ignore srv

let suite =
  suite
  @ List.map (fun (n, f) -> (n, `Quick, f)) instance_cases
  @ [
      ("instance of pp roundtrip", `Quick, test_instance_pp_roundtrip);
      ("analysis rejects free variables", `Quick, test_free_variable_rejected);
      ("analysis accepts all binder forms", `Quick, test_bound_variables_accepted);
    ]

(* ---- treat as / fn:trace ---- *)

let treat_cases =
  [
    ("treat as passes", expect "('x' treat as xs:string)" "x");
    ("treat as sequence", expect "count((//a treat as element()+))" "2");
    ("treat preserves empty with star", expect "count(() treat as item()*)" "0");
    ("trace is identity", expect "trace((1, 2), 'probe')" "1;2");
  ]

let treat_errors =
  [
    ("treat as fails on wrong type", expect_error "('x' treat as xs:integer)");
    ("treat as fails on cardinality", expect_error "((1, 2) treat as xs:integer)");
  ]

let suite =
  suite
  @ List.map (fun (n, f) -> (n, `Quick, f)) treat_cases
  @ List.map (fun (n, f) -> (n, `Quick, f)) treat_errors

(* ---- order by refinements ---- *)

let order_tests =
  [
    ("stable order by",
     expect "for $i in (3, 1, 2) stable order by $i return $i" "1;2;3");
    ("empty least default",
     expect "for $p in (<x><v>2</v></x>, <x/>, <x><v>1</v></x>) order by $p/v return count($p/v)"
       "0;1;1");
    ("empty greatest",
     expect
       "for $p in (<x><v>2</v></x>, <x/>, <x><v>1</v></x>) order by $p/v empty greatest return count($p/v)"
       "1;1;0");
    ("empty greatest descending",
     expect
       "for $p in (<x><v>2</v></x>, <x/>) order by $p/v descending empty greatest return count($p/v)"
       "0;1");
  ]

let suite = suite @ List.map (fun (n, f) -> (n, `Quick, f)) order_tests

(* Tests for the QDL/QML front-end: parser (incl. every QDL snippet from
   the paper, verbatim), semantic analysis, and the rule compiler. *)

module Defs = Demaq.Mq.Defs
module Value = Demaq.Value
module Ast = Demaq.Xquery.Ast
module Pp = Demaq.Xquery.Pp
module Qdl = Demaq.Lang.Qdl
module Analysis = Demaq.Lang.Analysis
module Compiler = Demaq.Lang.Compiler

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let parse = Qdl.parse_program

(* ---- QDL statements from the paper, verbatim ---- *)

let test_paper_queue_basic () =
  (* §2.1.1 *)
  match parse "create queue finance kind basic mode persistent" with
  | [ Qdl.Create_queue q ] ->
    check string_ "name" "finance" q.Defs.qname;
    check bool_ "kind" true (q.Defs.kind = Defs.Basic);
    check bool_ "mode" true (q.Defs.mode = Defs.Persistent)
  | _ -> Alcotest.fail "expected one queue"

let test_paper_queue_gateway () =
  (* §2.1.2 *)
  let src =
    {|create queue supplier kind outgoingGateway mode persistent
      interface supplier.wsdl port CapacityRequestPort
      using WS-ReliableMessaging policy wsrmpol.xml
      using WS-Security policy wssecpol.xml|}
  in
  match parse src with
  | [ Qdl.Create_queue q ] ->
    check bool_ "kind" true (q.Defs.kind = Defs.Outgoing_gateway);
    check (Alcotest.option string_) "interface" (Some "supplier.wsdl") q.Defs.interface;
    check (Alcotest.option string_) "port" (Some "CapacityRequestPort") q.Defs.port;
    check bool_ "extensions" true
      (q.Defs.extensions
       = [ ("WS-ReliableMessaging", "wsrmpol.xml"); ("WS-Security", "wssecpol.xml") ])
  | _ -> Alcotest.fail "expected one queue"

let test_paper_queue_echo () =
  (* §2.1.3 *)
  match parse "create queue echoQueue kind echo mode persistent" with
  | [ Qdl.Create_queue q ] -> check bool_ "echo kind" true (q.Defs.kind = Defs.Echo)
  | _ -> Alcotest.fail "expected one queue"

let test_paper_property_inherited () =
  (* §2.2 *)
  let src =
    {|create property isVIPorder as xs:boolean inherited
      queue crm, finance, legal, customer value false|}
  in
  match parse src with
  | [ Qdl.Create_property p ] ->
    check string_ "name" "isVIPorder" p.Defs.pname;
    check bool_ "type" true (p.Defs.ptype = Value.T_boolean);
    check bool_ "disposition" true (p.Defs.disposition = Defs.Inherited);
    check bool_ "queues" true
      (Defs.property_queues p = [ "crm"; "finance"; "legal"; "customer" ])
  | _ -> Alcotest.fail "expected one property"

let test_paper_property_fixed () =
  (* §2.2 *)
  let src =
    {|create property orderID as xs:string fixed
      queue order value //orderID
      queue confirmation value /confirmedOrder/ID|}
  in
  match parse src with
  | [ Qdl.Create_property p ] ->
    check bool_ "fixed" true (p.Defs.disposition = Defs.Fixed);
    check int_ "two groups" 2 (List.length p.Defs.per_queue);
    check bool_ "order expr" true
      (Option.is_some (Defs.property_expr_for p "order"));
    check bool_ "confirmation expr" true
      (Option.is_some (Defs.property_expr_for p "confirmation"));
    check bool_ "no other queue" true (Defs.property_expr_for p "x" = None)
  | _ -> Alcotest.fail "expected one property"

let test_paper_slicing () =
  (* §2.3.1 *)
  match parse "create slicing orders on orderID" with
  | [ Qdl.Create_slicing s ] ->
    check string_ "name" "orders" s.Defs.sname;
    check string_ "property" "orderID" s.Defs.slice_property
  | _ -> Alcotest.fail "expected one slicing"

let test_paper_rule_with_errorqueue () =
  (* Fig. 10 *)
  let src =
    {|create rule confirmOrder for crm errorqueue crmErrors
      if (//customerOrder) then
        let $confirmation := <confirmation>{//orderID}</confirmation>
        return do enqueue $confirmation into customer|}
  in
  match parse src with
  | [ Qdl.Create_rule r ] ->
    check string_ "name" "confirmOrder" r.Qdl.rname;
    check string_ "target" "crm" r.Qdl.target;
    check (Alcotest.option string_) "errorqueue" (Some "crmErrors") r.Qdl.rule_error_queue;
    check bool_ "body has enqueue" true (Ast.contains_update r.Qdl.body)
  | _ -> Alcotest.fail "expected one rule"

let test_paper_figure8 () =
  (* Fig. 8, verbatim *)
  let src =
    {|create rule cleanupRequest for requestMsgs
      if (qs:slice()/offer or qs:slice()/refusal) then
        do reset|}
  in
  match parse src with
  | [ Qdl.Create_rule r ] -> check string_ "target" "requestMsgs" r.Qdl.target
  | _ -> Alcotest.fail "expected one rule"

let test_paper_figure9_declarations () =
  (* Fig. 9 property + slicing + both rules parse as one program *)
  let src =
    {|create property messageRequestID as xs:string fixed
        queue invoices, finance value //requestID
      create slicing invoiceRetention on messageRequestID
      create rule resetPayedInvoices for invoiceRetention
        if (qs:slice()//timeoutNotification
            and qs:slice()/paymentConfirmation) then
        do reset
      create rule checkPayment for finance
        if (//timeoutNotification) then
          let $mRID := qs:message()//requestID
          let $payments := qs:queue()[/paymentConfirmation]
          return
            if (not($payments[//requestID = $mRID])) then
              let $invoice := qs:queue("invoices")[//requestID = $mRID]
              let $reminder := <reminder>{$mRID}</reminder>
              return do enqueue $reminder into customer
            else ()|}
  in
  let p = parse src in
  check int_ "four statements" 4 (List.length p);
  check int_ "two rules" 2 (List.length (Qdl.rules p))

let test_multiline_program () =
  let src =
    {|(: a comment between statements :)
      create queue a kind basic mode persistent priority 5
      create queue b kind basic mode transient errorqueue a
      create rule r for a if (//x) then do enqueue <y/> into b|}
  in
  let p = parse src in
  check int_ "three statements" 3 (List.length p);
  match Qdl.queues p with
  | [ qa; qb ] ->
    check int_ "priority" 5 qa.Defs.priority;
    check bool_ "transient" true (qb.Defs.mode = Defs.Transient);
    check (Alcotest.option string_) "errorqueue" (Some "a") qb.Defs.error_queue
  | _ -> Alcotest.fail "expected two queues"

let test_inline_schema () =
  let src =
    {|create queue q kind basic mode persistent
        schema { element order { orderID } element orderID { text } }|}
  in
  match parse src with
  | [ Qdl.Create_queue q ] -> check bool_ "schema parsed" true (Option.is_some q.Defs.schema)
  | _ -> Alcotest.fail "expected one queue"

let qdl_errors =
  [
    "create table x";
    "create queue q kind bogus mode persistent";
    "create queue q kind basic mode sometimes";
    "create queue q mode persistent kind basic";  (* fixed order, like the paper *)
    "create property p as xs:date queue q value 1";
    "create property p as xs:string";
    "create slicing s over p";
    "create rule r for";
    "create rule r for q if (";
    "creat queue q kind basic mode persistent";
  ]

let test_qdl_errors () =
  List.iter
    (fun src ->
      match Qdl.parse_program_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected QDL error for: %s" src)
    qdl_errors

let test_error_position_reported () =
  match Qdl.parse_program_result "create queue q kind basic mode persistent\ncreate bogus" with
  | Error msg -> check bool_ "mentions line 2" true
    (let rec has i = i + 6 <= String.length msg && (String.sub msg i 6 = "line 2" || has (i+1)) in
     has 0)
  | Ok _ -> Alcotest.fail "expected error"

(* ---- semantic analysis ---- *)

let analyze src = Analysis.analyze (parse src)

let errors_of r =
  List.filter (fun d -> d.Analysis.severity = Analysis.Error) r.Analysis.diagnostics

let test_analysis_clean () =
  let r =
    analyze
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create property p as xs:string queue a value //id
        create slicing s on p
        create rule r1 for a if (//x) then do enqueue <y/> into b
        create rule r2 for s if (qs:slice()) then do reset|}
  in
  check bool_ "ok" true r.Analysis.ok;
  check int_ "no errors" 0 (List.length (errors_of r))

let expect_analysis_error src fragment () =
  let r = analyze src in
  check bool_ "not ok" false r.Analysis.ok;
  let msgs = List.map (fun d -> d.Analysis.message) (errors_of r) in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  check bool_ (Printf.sprintf "mentions %s in %s" fragment (String.concat "; " msgs))
    true
    (List.exists (fun m -> contains m fragment) msgs)

let analysis_cases =
  [
    ( "unknown rule target",
      {|create queue a kind basic mode persistent
        create rule r for nowhere if (//x) then do enqueue <y/> into a|},
      "unknown queue or slicing" );
    ( "unknown enqueue target",
      {|create queue a kind basic mode persistent
        create rule r for a if (//x) then do enqueue <y/> into nowhere|},
      "unknown queue nowhere" );
    ( "property unknown queue",
      {|create property p as xs:string queue ghost value //id|},
      "unknown queue ghost" );
    ( "slicing unknown property",
      {|create slicing s on ghost|},
      "unknown property ghost" );
    ( "qs:slice outside slicing",
      {|create queue a kind basic mode persistent
        create rule r for a if (qs:slice()) then do reset|},
      "only available in rules attached to slicings" );
    ( "duplicate queue",
      {|create queue a kind basic mode persistent
        create queue a kind basic mode persistent|},
      "duplicate definition" );
    ( "rule errorqueue unknown",
      {|create queue a kind basic mode persistent
        create rule r for a errorqueue ghost if (//x) then do enqueue <y/> into a|},
      "unknown error queue" );
    ( "reliable messaging needs persistence",
      {|create queue g kind outgoingGateway mode transient
        using WS-ReliableMessaging policy pol.xml|},
      "persistent" );
  ]

let test_analysis_warning_no_update () =
  let r =
    analyze
      {|create queue a kind basic mode persistent
        create rule r for a if (//x) then ()|}
  in
  check bool_ "still ok" true r.Analysis.ok;
  check int_ "one warning" 1
    (List.length
       (List.filter (fun d -> d.Analysis.severity = Analysis.Warning) r.Analysis.diagnostics))

(* ---- compiler ---- *)

let compile src = Compiler.compile (parse src)

let body_of plan rule =
  let r = List.find (fun r -> r.Compiler.cr_name = rule) plan.Compiler.rules in
  Pp.to_string r.Compiler.cr_body

let test_compiler_groups_rules () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule r1 for a if (//x) then do enqueue <y/> into b
        create rule r2 for a if (//z) then do enqueue <w/> into b
        create rule r3 for b if (//x) then do enqueue <v/> into a|}
  in
  let pa = Option.get (Compiler.plan_for c "a") in
  check int_ "two rules on a" 2 (List.length pa.Compiler.rules);
  check bool_ "merged is a sequence of both" true
    (match pa.Compiler.merged with Ast.Sequence [ _; _ ] -> true | _ -> false);
  check bool_ "no plan for ghost" true (Compiler.plan_for c "ghost" = None)

let test_compiler_queue_default () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create rule r for a if (qs:queue()[//x]) then do enqueue <y/> into a|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  let printed = body_of plan "r" in
  check bool_ ("default supplied: " ^ printed) true
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains printed {|qs:queue("a")|})

let test_compiler_inlines_fixed_property () =
  let c =
    compile
      {|create queue order kind basic mode persistent
        create property orderID as xs:string fixed queue order value //orderID
        create rule r for order
          if (qs:property("orderID") = "o1") then do enqueue <hit/> into order|}
  in
  let plan = Option.get (Compiler.plan_for c "order") in
  let printed = body_of plan "r" in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check bool_ ("property call gone: " ^ printed) false (contains printed "qs:property");
  check bool_ ("path inlined: " ^ printed) true (contains printed "//orderID")

let test_compiler_no_inline_for_free_property () =
  let c =
    compile
      {|create queue order kind basic mode persistent
        create property note as xs:string queue order value //note
        create rule r for order
          if (qs:property("note")) then do enqueue <hit/> into order|}
  in
  let plan = Option.get (Compiler.plan_for c "order") in
  let printed = body_of plan "r" in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* free properties may be set explicitly, so the call must survive *)
  check bool_ "property call kept" true (contains printed "qs:property")

let test_compiler_constant_folding () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create rule r for a
          if (1 + 1 = 2) then do enqueue <y/> into a|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  match (List.hd plan.Compiler.rules).Compiler.cr_body with
  | Ast.Enqueue _ -> ()  (* the whole conditional folded away *)
  | other -> Alcotest.failf "expected folded body, got %s" (Pp.to_string other)

let test_compiler_optimize_off () =
  let c =
    Compiler.compile ~optimize:false
      (parse
         {|create queue a kind basic mode persistent
           create rule r for a if (1 + 1 = 2) then do enqueue <y/> into a|})
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  match (List.hd plan.Compiler.rules).Compiler.cr_body with
  | Ast.If _ -> ()
  | other -> Alcotest.failf "expected unoptimized body, got %s" (Pp.to_string other)

let test_explain () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create rule r for a errorqueue a if (//x) then do enqueue <y/> into a|}
  in
  let text = Compiler.explain c in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  check bool_ "mentions plan" true (contains "plan for a");
  check bool_ "mentions rule" true (contains "rule r");
  check bool_ "mentions error queue" true (contains "errors -> a")

let suite =
  [
    ("paper: basic queue", `Quick, test_paper_queue_basic);
    ("paper: gateway queue with WS extensions", `Quick, test_paper_queue_gateway);
    ("paper: echo queue", `Quick, test_paper_queue_echo);
    ("paper: inherited property", `Quick, test_paper_property_inherited);
    ("paper: fixed property, two queue groups", `Quick, test_paper_property_fixed);
    ("paper: slicing", `Quick, test_paper_slicing);
    ("paper: rule with errorqueue (Fig. 10)", `Quick, test_paper_rule_with_errorqueue);
    ("paper: cleanup rule (Fig. 8)", `Quick, test_paper_figure8);
    ("paper: retention program (Fig. 9)", `Quick, test_paper_figure9_declarations);
    ("multi-statement program", `Quick, test_multiline_program);
    ("inline schema option", `Quick, test_inline_schema);
    ("QDL errors", `Quick, test_qdl_errors);
    ("QDL error positions", `Quick, test_error_position_reported);
    ("analysis: clean program", `Quick, test_analysis_clean);
  ]
  @ List.map
      (fun (name, src, frag) ->
        ("analysis: " ^ name, `Quick, expect_analysis_error src frag))
      analysis_cases
  @ [
      ("analysis: no-update warning", `Quick, test_analysis_warning_no_update);
      ("compiler groups rules by queue", `Quick, test_compiler_groups_rules);
      ("compiler supplies qs:queue default", `Quick, test_compiler_queue_default);
      ("compiler inlines fixed properties", `Quick, test_compiler_inlines_fixed_property);
      ("compiler keeps free property calls", `Quick, test_compiler_no_inline_for_free_property);
      ("compiler folds constants", `Quick, test_compiler_constant_folding);
      ("compiler optimize off", `Quick, test_compiler_optimize_off);
      ("explain output", `Quick, test_explain);
    ]

let test_condition_factoring () =
  let c =
    compile
      {|create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule r1 for a if (//x) then do enqueue <a1/> into b
        create rule r2 for a if (//x) then do enqueue <a2/> into b else do enqueue <e2/> into b
        create rule r3 for a if (//y) then do enqueue <a3/> into b|}
  in
  let plan = Option.get (Compiler.plan_for c "a") in
  (* r1 and r2 share the condition //x: the merged plan evaluates it once *)
  match plan.Compiler.merged with
  | Ast.Sequence [ Ast.If (_, Ast.Sequence [ _; _ ], els); Ast.If (_, _, _) ] ->
    (match els with
     | Ast.Sequence [ _ ] -> ()
     | Ast.Empty_seq -> Alcotest.fail "else branch of r2 lost"
     | _ -> Alcotest.fail "unexpected else shape")
  | other ->
    Alcotest.failf "unexpected merged shape: %s" (Pp.to_string other)

let suite = suite @ [ ("compiler factors shared conditions", `Quick, test_condition_factoring) ]

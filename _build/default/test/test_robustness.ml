(* Robustness: crash-point recovery matrix, scheduler ordering properties,
   heap invariants, and parser fuzz safety (malformed input must fail with
   the documented exception, never crash or loop). *)

module Store = Demaq.Store.Message_store
module Wal = Demaq.Store.Wal
module Heap = Demaq.Engine.Heap
module Scheduler = Demaq.Engine.Scheduler
module Xml_parser = Demaq.Xml.Parser
module Xq_parser = Demaq.Xquery.Parser
module Qdl = Demaq.Lang.Qdl

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-robust-%s-%d" tag (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Unix.mkdir dir 0o755;
  dir

(* ---- crash-point matrix ----

   Write a known history of transactions, then simulate a crash at every
   byte position of the log by truncating a copy. After recovery the store
   must contain a prefix of the committed transactions: never a partial
   transaction, never a later transaction without all earlier ones. *)

let test_crash_point_matrix () =
  let dir = fresh_dir "crash" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  (* txn i inserts messages (3i-2, 3i-1, 3i) atomically *)
  for i = 1 to 5 do
    let txn = Store.begin_txn st in
    for j = 1 to 3 do
      ignore
        (Store.insert txn ~queue:"q"
           ~payload:(Printf.sprintf "<m t='%d' j='%d'/>" i j)
           ~extra:"" ~enqueued_at:i ~durable:true)
    done;
    Store.commit txn
  done;
  Store.close st;
  let wal_path = Filename.concat dir "wal.log" in
  let full = In_channel.with_open_bin wal_path In_channel.input_all in
  let total = String.length full in
  let crash_dir = fresh_dir "crash-replay" in
  let violations = ref [] in
  (* test a spread of truncation points including every record boundary *)
  let points = List.init 61 (fun i -> i * total / 60) in
  List.iter
    (fun cut ->
      Out_channel.with_open_bin (Filename.concat crash_dir "wal.log") (fun oc ->
          Out_channel.output_string oc (String.sub full 0 cut));
      let snapshot = Filename.concat crash_dir "snapshot.bin" in
      if Sys.file_exists snapshot then Sys.remove snapshot;
      let st = Store.open_store (Store.durable_config ~sync:Wal.Sync_never crash_dir) in
      let n = Store.queue_length st "q" in
      Store.close st;
      (* atomicity: only whole transactions *)
      if n mod 3 <> 0 then violations := (cut, n) :: !violations)
    points;
  check bool_
    (Printf.sprintf "whole transactions only (violations at %s)"
       (String.concat ","
          (List.map (fun (c, n) -> Printf.sprintf "%d:%d" c n) !violations)))
    true (!violations = []);
  (* the full log recovers everything *)
  Out_channel.with_open_bin (Filename.concat crash_dir "wal.log") (fun oc ->
      Out_channel.output_string oc full);
  let st = Store.open_store (Store.durable_config ~sync:Wal.Sync_never crash_dir) in
  check int_ "full history" 15 (Store.queue_length st "q");
  Store.close st

let test_crash_during_checkpoint_tmp () =
  (* a leftover snapshot.bin.tmp (crash mid-checkpoint) must be ignored *)
  let dir = fresh_dir "ckpt" in
  let cfg = Store.durable_config ~sync:Wal.Sync_never dir in
  let st = Store.open_store cfg in
  let txn = Store.begin_txn st in
  ignore (Store.insert txn ~queue:"q" ~payload:"<a/>" ~extra:"" ~enqueued_at:1 ~durable:true);
  Store.commit txn;
  Store.close st;
  Out_channel.with_open_bin (Filename.concat dir "snapshot.bin.tmp") (fun oc ->
      Out_channel.output_string oc "garbage-partial-snapshot");
  let st = Store.open_store cfg in
  check int_ "recovered from log despite tmp file" 1 (Store.queue_length st "q");
  Store.close st

(* ---- heap and scheduler ordering ---- *)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let prop_scheduler_order =
  (* higher priority first; FIFO within a priority *)
  QCheck.Test.make ~name:"scheduler: priority then arrival order" ~count:200
    QCheck.(list (pair (int_bound 3) small_nat))
    (fun entries ->
      let sched = Scheduler.create () in
      List.iteri (fun i (prio, _) -> Scheduler.add sched ~priority:prio i) entries;
      let rec drain acc =
        match Scheduler.pop sched with
        | Some rid -> drain (rid :: acc)
        | None -> List.rev acc
      in
      let order = drain [] in
      (* reference: stable sort of indices by descending priority *)
      let expected =
        List.map snd
          (List.stable_sort
             (fun (p1, _) (p2, _) -> compare p2 p1)
             (List.mapi (fun i (prio, _) -> (prio, i)) entries))
      in
      order = expected)

(* ---- parser fuzz safety ---- *)

let gen_junk =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_bound 30)
         (oneofl
            [ "<"; ">"; "/"; "a"; "b"; "("; ")"; "{"; "}"; "\""; "'"; "&"; ";";
              " "; "$"; "="; "!"; "["; "]"; ","; "1"; "if"; "then"; "do"; ":";
              "enqueue"; "<a>"; "</a>"; "//"; "create"; "queue"; "--"; "<!" ])))

let prop_xml_fuzz =
  QCheck.Test.make ~name:"XML parser: junk fails cleanly" ~count:500
    (QCheck.make gen_junk ~print:Fun.id)
    (fun s ->
      match Xml_parser.parse s with
      | _ -> true
      | exception Xml_parser.Parse_error _ -> true
      | exception _ -> false)

let prop_xquery_fuzz =
  QCheck.Test.make ~name:"XQuery parser: junk fails cleanly" ~count:500
    (QCheck.make gen_junk ~print:Fun.id)
    (fun s ->
      match Xq_parser.parse s with
      | _ -> true
      | exception Xq_parser.Syntax_error _ -> true
      | exception _ -> false)

let prop_qdl_fuzz =
  QCheck.Test.make ~name:"QDL parser: junk fails cleanly" ~count:500
    (QCheck.make gen_junk ~print:Fun.id)
    (fun s ->
      match Qdl.parse_program s with
      | _ -> true
      | exception Qdl.Qdl_error _ -> true
      | exception _ -> false)

(* well-formed expressions evaluate or raise Eval_error, never crash *)
let gen_exprs =
  QCheck.Gen.(
    oneofl
      [ "1 idiv 0"; "//a[1 to 3]"; "sum(('a', 'b'))"; "substring('x', 0 - 5)";
        "let $x := <a/> return $x/.."; "(1, 2)[true()]"; "string((1, 2))";
        "avg(//missing)"; "max(())"; "<a>{/}</a>"; "()[1]"; "(//a)[last() + 1]";
        "qs:message()"; "-'x'"; "1 + 'y'"; "element {1 + 1} {2}";
        "concat('a', 'b', 'c', 'd', 'e')"; "index-of((), 1)" ])

let prop_eval_total =
  QCheck.Test.make ~name:"evaluator: corner expressions never crash" ~count:200
    (QCheck.make gen_exprs ~print:Fun.id)
    (fun src ->
      let ctx = Demaq.xml "<r><a>1</a></r>" in
      match Demaq.Xquery.Eval.run ~context:ctx src with
      | _ -> true
      | exception Demaq.Xquery.Context.Eval_error _ -> true
      | exception _ -> false)

let suite =
  [
    ("crash-point matrix", `Quick, test_crash_point_matrix);
    ("crash during checkpoint", `Quick, test_crash_during_checkpoint_tmp);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_scheduler_order;
    QCheck_alcotest.to_alcotest prop_xml_fuzz;
    QCheck_alcotest.to_alcotest prop_xquery_fuzz;
    QCheck_alcotest.to_alcotest prop_qdl_fuzz;
    QCheck_alcotest.to_alcotest prop_eval_total;
  ]

(* Tests for dynamic queue and rule evolution (paper §5 future work) and
   multi-node distribution via gateway pairs (§2.1.2). *)

module Tree = Demaq.Xml.Tree
module Value = Demaq.Value
module Message = Demaq.Message
module Net = Demaq.Network
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let xml = Demaq.xml

let bodies srv q =
  List.map (fun m -> Demaq.xml_to_string (Message.body m)) (S.queue_contents srv q)

let inject_ok srv queue payload =
  match S.inject srv ~queue (xml payload) with
  | Ok m -> m
  | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e)

let evolve_ok srv src =
  match S.evolve srv src with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "evolve failed: %s" msg

let base_program = {|
  create queue in kind basic mode persistent
  create queue out kind basic mode persistent
  create rule fwd for in
    if (//m) then do enqueue <fwd>{string(//m)}</fwd> into out
|}

(* ---- adding rules at runtime ---- *)

let test_add_rule () =
  let srv = S.deploy base_program in
  ignore (inject_ok srv "in" "<m>1</m>");
  ignore (S.run srv);
  check int_ "one output before evolution" 1 (List.length (bodies srv "out"));
  evolve_ok srv
    {|create rule audit for in
        if (//m) then do enqueue <audited>{string(//m)}</audited> into out|};
  ignore (inject_ok srv "in" "<m>2</m>");
  ignore (S.run srv);
  let out = bodies srv "out" in
  (* the new rule applies to new messages only going forward; the first
     message was already processed *)
  check bool_ "both rules fired for message 2" true
    (List.mem "<fwd>2</fwd>" out && List.mem "<audited>2</audited>" out);
  check bool_ "message 1 not retroactively audited" true
    (not (List.mem "<audited>1</audited>" out))

let test_add_rule_applies_to_pending () =
  (* a message enqueued but not yet processed gets the new rule *)
  let srv = S.deploy base_program in
  ignore (inject_ok srv "in" "<m>late</m>");
  evolve_ok srv
    {|create rule audit for in
        if (//m) then do enqueue <audited>{string(//m)}</audited> into out|};
  ignore (S.run srv);
  check bool_ "pending message saw the new rule" true
    (List.mem "<audited>late</audited>" (bodies srv "out"))

(* ---- dropping rules ---- *)

let test_drop_rule () =
  let srv = S.deploy base_program in
  evolve_ok srv "drop rule fwd";
  ignore (inject_ok srv "in" "<m>x</m>");
  ignore (S.run srv);
  check int_ "no output after drop" 0 (List.length (bodies srv "out"))

let test_drop_unknown_rule () =
  let srv = S.deploy base_program in
  match S.evolve srv "drop rule ghost" with
  | Error msg ->
    check bool_ "names the rule" true
      (let n = String.length "ghost" in
       let rec go i =
         i + n <= String.length msg && (String.sub msg i n = "ghost" || go (i + 1))
       in
       go 0)
  | Ok () -> Alcotest.fail "expected error"

let test_replace_rule () =
  (* drop + create in one script = hot rule replacement *)
  let srv = S.deploy base_program in
  evolve_ok srv
    {|drop rule fwd
      create rule fwd for in
        if (//m) then do enqueue <v2>{string(//m)}</v2> into out|};
  ignore (inject_ok srv "in" "<m>z</m>");
  ignore (S.run srv);
  check bool_ "new body in effect" true (bodies srv "out" = [ "<v2>z</v2>" ])

(* ---- adding infrastructure at runtime ---- *)

let test_add_queue_and_rule () =
  let srv = S.deploy base_program in
  evolve_ok srv
    {|create queue archive kind basic mode persistent
      create rule toArchive for out
        if (//fwd) then do enqueue <kept/> into archive|};
  ignore (inject_ok srv "in" "<m>a</m>");
  ignore (S.run srv);
  check bool_ "cascade through the new queue" true (bodies srv "archive" = [ "<kept/>" ])

let test_add_slicing_affects_future_only () =
  let srv = S.deploy base_program in
  ignore (inject_ok srv "in" "<m><k>old</k></m>");
  ignore (S.run srv);
  evolve_ok srv
    {|create property k as xs:string fixed queue in value //k
      create slicing byK on k
      create rule onSlice for byK
        if (qs:message()//m) then
          do enqueue <seen>{string(qs:slicekey())}</seen> into out|};
  ignore (inject_ok srv "in" "<m><k>new</k></m>");
  ignore (S.run srv);
  let out = bodies srv "out" in
  check bool_ "new message in new slicing" true (List.mem "<seen>new</seen>" out);
  (* the old message predates the slicing: no membership, no slice rule *)
  check bool_ "old message untouched" true (not (List.mem "<seen>old</seen>" out))

(* ---- rejected evolutions ---- *)

let test_evolution_rejected_keeps_old_rules () =
  let srv = S.deploy base_program in
  (match S.evolve srv
           {|create rule bad for nowhere if (//x) then do enqueue <y/> into out|}
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected rejection");
  (* the running rule set is untouched *)
  ignore (inject_ok srv "in" "<m>still</m>");
  ignore (S.run srv);
  check bool_ "old rule still active" true (bodies srv "out" = [ "<fwd>still</fwd>" ])

let test_evolution_duplicate_rejected () =
  let srv = S.deploy base_program in
  match S.evolve srv "create queue in kind basic mode persistent" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected duplicate-queue rejection"

let test_drop_in_initial_program_rejected () =
  match S.deploy "drop rule x" with
  | _ -> Alcotest.fail "expected deployment error"
  | exception S.Deployment_error _ -> ()

(* ---- distribution: two nodes connected by gateway pairs (§2.1.2) ---- *)

let node_a_program = {|
  create queue work kind basic mode persistent
  create queue toB kind outgoingGateway mode persistent
  create queue fromB kind incomingGateway mode persistent
  create queue results kind basic mode persistent
  create rule dispatch for work
    if (//job) then do enqueue <task>{string(//job/id)}</task> into toB
  create rule collect for fromB
    if (//taskDone) then do enqueue <result>{string(//taskDone)}</result> into results
|}

let node_b_program = {|
  create queue inbox kind incomingGateway mode persistent
  create queue toA kind outgoingGateway mode persistent
  create rule work for inbox
    if (//task) then do enqueue <taskDone>{concat(string(//task), "-done")}</taskDone> into toA
|}

let test_two_nodes () =
  let net = Net.create () in
  let node_a = S.deploy ~network:net node_a_program in
  let node_b = S.deploy ~network:net node_b_program in
  (* wire the gateway pairs: A.toB -> B.inbox, B.toA -> A.fromB *)
  (match S.expose node_b ~name:"nodeB" ~queue:"inbox" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match S.expose node_a ~name:"nodeA" ~queue:"fromB" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  S.bind_gateway node_a ~queue:"toB" ~endpoint:"nodeB" ();
  S.bind_gateway node_b ~queue:"toA" ~endpoint:"nodeA" ();
  ignore
    (match S.inject node_a ~queue:"work" (xml "<job><id>j1</id></job>") with
     | Ok m -> m
     | Error e -> Alcotest.failf "inject: %s" (Demaq.Mq.Queue_manager.error_to_string e));
  (* run both nodes to quiescence *)
  let rec settle rounds =
    if rounds > 0 then begin
      let a = S.run node_a in
      let b = S.run node_b in
      if a + b > 0 then settle (rounds - 1)
    end
  in
  settle 10;
  check bool_ "result returned to node A" true
    (bodies node_a "results" = [ "<result>j1-done</result>" ]);
  (* the remote sender address was recorded on B's inbox message *)
  let received = List.hd (S.queue_contents node_b "inbox") in
  check bool_ "sender recorded" true
    (Message.property received Demaq.Mq.Defs.Sysprop.sender <> None)

let test_expose_validations () =
  let srv = S.deploy base_program in
  (match S.expose srv ~name:"x" ~queue:"in" with
   | Error msg ->
     check bool_ "kind checked" true
       (let sub = "not an incoming gateway" in
        let n = String.length sub in
        let rec go i = i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1)) in
        go 0)
   | Ok () -> Alcotest.fail "expected kind error");
  match S.expose srv ~name:"x" ~queue:"ghost" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected unknown-queue error"

let test_distributed_pipeline_three_nodes () =
  (* a chain: source -> transform -> sink across three servers *)
  let net = Net.create () in
  let source =
    S.deploy ~network:net
      {|create queue start kind basic mode persistent
        create queue outHop kind outgoingGateway mode persistent
        create rule go for start
          if (//n) then do enqueue <v>{number(//n) * 2}</v> into outHop|}
  in
  let transform =
    S.deploy ~network:net
      {|create queue hopIn kind incomingGateway mode persistent
        create queue outHop kind outgoingGateway mode persistent
        create rule double for hopIn
          if (//v) then do enqueue <v>{number(//v) + 1}</v> into outHop|}
  in
  let sink =
    S.deploy ~network:net
      {|create queue final kind incomingGateway mode persistent|}
  in
  (match S.expose transform ~name:"transform" ~queue:"hopIn" with Ok () -> () | Error e -> Alcotest.fail e);
  (match S.expose sink ~name:"sink" ~queue:"final" with Ok () -> () | Error e -> Alcotest.fail e);
  S.bind_gateway source ~queue:"outHop" ~endpoint:"transform" ();
  S.bind_gateway transform ~queue:"outHop" ~endpoint:"sink" ();
  ignore
    (match S.inject source ~queue:"start" (xml "<n>20</n>") with
     | Ok m -> m
     | Error e -> Alcotest.failf "%s" (Demaq.Mq.Queue_manager.error_to_string e));
  let rec settle rounds =
    if rounds > 0 then
      let n = S.run source + S.run transform + S.run sink in
      if n > 0 then settle (rounds - 1)
  in
  settle 10;
  check bool_ "value flowed through both hops" true
    (bodies sink "final" = [ "<v>41</v>" ])

let suite =
  [
    ("add a rule at runtime (§5)", `Quick, test_add_rule);
    ("new rule sees pending messages", `Quick, test_add_rule_applies_to_pending);
    ("drop a rule", `Quick, test_drop_rule);
    ("drop unknown rule", `Quick, test_drop_unknown_rule);
    ("hot rule replacement", `Quick, test_replace_rule);
    ("add queue + rule at runtime", `Quick, test_add_queue_and_rule);
    ("new slicing affects future messages only", `Quick, test_add_slicing_affects_future_only);
    ("rejected evolution keeps old rules", `Quick, test_evolution_rejected_keeps_old_rules);
    ("duplicate definitions rejected", `Quick, test_evolution_duplicate_rejected);
    ("drop in initial program rejected", `Quick, test_drop_in_initial_program_rejected);
    ("two nodes via gateway pairs (§2.1.2)", `Quick, test_two_nodes);
    ("expose validations", `Quick, test_expose_validations);
    ("three-node pipeline", `Quick, test_distributed_pipeline_three_nodes);
  ]

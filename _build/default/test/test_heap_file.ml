(* Tests for the page buffer pool and the slotted-page heap file. *)

module Pager = Demaq.Store.Pager
module Heap_file = Demaq.Store.Heap_file

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let counter = ref 0

let fresh_path tag =
  incr counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "demaq-heap-%s-%d-%d.db" tag (Unix.getpid ()) !counter)

let with_file tag f =
  let path = fresh_path tag in
  if Sys.file_exists path then Sys.remove path;
  let r = f path in
  if Sys.file_exists path then Sys.remove path;
  r

(* ---- pager ---- *)

let test_pager_basic () =
  with_file "pager" (fun path ->
      let p = Pager.create ~pool_pages:4 path in
      check int_ "empty" 0 (Pager.page_count p);
      let pg = Pager.allocate p in
      Pager.update_page p pg (fun b -> Bytes.blit_string "hello" 0 b 0 5);
      check string_ "read back" "hello"
        (Pager.with_page p pg (fun b -> Bytes.sub_string b 0 5));
      Pager.close p;
      (* durable across reopen *)
      let p2 = Pager.create ~pool_pages:4 path in
      check int_ "one page" 1 (Pager.page_count p2);
      check string_ "persisted" "hello"
        (Pager.with_page p2 pg (fun b -> Bytes.sub_string b 0 5));
      Pager.close p2)

let test_pager_eviction () =
  with_file "evict" (fun path ->
      let p = Pager.create ~pool_pages:2 path in
      let pages = List.init 10 (fun _ -> Pager.allocate p) in
      List.iteri
        (fun i pg -> Pager.update_page p pg (fun b -> Bytes.set_uint16_le b 0 i))
        pages;
      (* all still readable despite the tiny pool *)
      List.iteri
        (fun i pg ->
          check int_ (Printf.sprintf "page %d" i) i
            (Pager.with_page p pg (fun b -> Bytes.get_uint16_le b 0)))
        pages;
      let s = Pager.stats p in
      check bool_ "evictions happened" true (s.Pager.evictions > 0);
      check bool_ "writebacks happened" true (s.Pager.writebacks > 0);
      Pager.close p)

let test_pager_pin_guard () =
  with_file "pin" (fun path ->
      let p = Pager.create ~pool_pages:2 path in
      let a = Pager.allocate p and b = Pager.allocate p in
      let _c = Pager.allocate p in
      let pa = Pager.pin p a and pb = Pager.pin p b in
      (* both frames pinned: a third page cannot be faulted *)
      (match Pager.pin p _c with
       | _ -> Alcotest.fail "expected pool exhaustion"
       | exception Invalid_argument _ -> ());
      Pager.unpin p pa;
      Pager.unpin p pb;
      ignore (Pager.pin p _c);
      Pager.close p)

let test_pager_out_of_range () =
  with_file "range" (fun path ->
      let p = Pager.create path in
      (match Pager.pin p 0 with
       | _ -> Alcotest.fail "expected range error"
       | exception Invalid_argument _ -> ());
      Pager.close p)

(* ---- heap file ---- *)

let test_heap_roundtrip () =
  with_file "heap" (fun path ->
      let h = Heap_file.create path in
      let r1 = Heap_file.insert h "alpha" in
      let r2 = Heap_file.insert h "beta" in
      check string_ "r1" "alpha" (Heap_file.read h r1);
      check string_ "r2" "beta" (Heap_file.read h r2);
      check int_ "count" 2 (Heap_file.record_count h);
      Heap_file.close h)

let test_heap_large_records () =
  with_file "large" (fun path ->
      let h = Heap_file.create path in
      let big = String.init 50_000 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
      let huge = String.make 200_000 'z' in
      let r1 = Heap_file.insert h big in
      let r2 = Heap_file.insert h "tiny" in
      let r3 = Heap_file.insert h huge in
      check bool_ "big roundtrip" true (Heap_file.read h r1 = big);
      check string_ "tiny" "tiny" (Heap_file.read h r2);
      check bool_ "huge roundtrip" true (Heap_file.read h r3 = huge);
      (* chains span many pages *)
      check bool_ "many pages" true ((Heap_file.pager_stats h).Pager.pages > 25);
      Heap_file.close h)

let test_heap_free_and_reuse () =
  with_file "reuse" (fun path ->
      let h = Heap_file.create path in
      let big = String.make 100_000 'x' in
      let r = Heap_file.insert h big in
      let pages_before = (Heap_file.pager_stats h).Pager.pages in
      Heap_file.free h r;
      check int_ "freed" 0 (Heap_file.record_count h);
      (match Heap_file.read h r with
       | _ -> Alcotest.fail "expected free-rid error"
       | exception Invalid_argument _ -> ());
      (* a second large record reuses the freed chain pages *)
      let _r2 = Heap_file.insert h big in
      let pages_after = (Heap_file.pager_stats h).Pager.pages in
      check int_ "no file growth on reuse" pages_before pages_after;
      Heap_file.close h)

let test_heap_persistence () =
  with_file "persist" (fun path ->
      let h = Heap_file.create path in
      let rids =
        List.init 50 (fun i -> (i, Heap_file.insert h (Printf.sprintf "record-%d" i)))
      in
      let big_rid = Heap_file.insert h (String.make 30_000 'Q') in
      Heap_file.free h (List.assoc 10 rids);
      Heap_file.close h;
      let h2 = Heap_file.create path in
      check int_ "count restored" 50 (Heap_file.record_count h2);
      List.iter
        (fun (i, rid) ->
          if i <> 10 then
            check string_
              (Printf.sprintf "record %d" i)
              (Printf.sprintf "record-%d" i)
              (Heap_file.read h2 rid))
        rids;
      check bool_ "big restored" true (Heap_file.read h2 big_rid = String.make 30_000 'Q');
      (* iter sees exactly the live records *)
      let seen = ref 0 in
      Heap_file.iter h2 (fun _ _ -> incr seen);
      check int_ "iter count" 50 !seen;
      Heap_file.close h2)

let prop_heap_model =
  QCheck.Test.make ~name:"heap file agrees with an assoc model" ~count:60
    QCheck.(
      small_list
        (pair (oneofl [ `Insert; `Free ]) (pair small_nat (int_range 0 3000))))
    (fun script ->
      with_file "model" (fun path ->
          let h = Heap_file.create path in
          let model = ref [] in
          List.iter
            (fun (op, (key, size)) ->
              match op with
              | `Insert ->
                let data = String.make size (Char.chr (65 + (key mod 26))) in
                let rid = Heap_file.insert h data in
                model := (rid, data) :: !model
              | `Free -> (
                match !model with
                | [] -> ()
                | l ->
                  let i = key mod List.length l in
                  let rid, _ = List.nth l i in
                  Heap_file.free h rid;
                  model := List.filteri (fun j _ -> j <> i) l))
            script;
          let ok =
            List.for_all (fun (rid, data) -> Heap_file.read h rid = data) !model
            && Heap_file.record_count h = List.length !model
          in
          Heap_file.close h;
          ok))

let suite =
  [
    ("pager basics and persistence", `Quick, test_pager_basic);
    ("pager eviction with tiny pool", `Quick, test_pager_eviction);
    ("pager pin guard", `Quick, test_pager_pin_guard);
    ("pager range checks", `Quick, test_pager_out_of_range);
    ("heap roundtrip", `Quick, test_heap_roundtrip);
    ("heap large records chain", `Quick, test_heap_large_records);
    ("heap free and reuse", `Quick, test_heap_free_and_reuse);
    ("heap persistence and iter", `Quick, test_heap_persistence);
    QCheck_alcotest.to_alcotest prop_heap_model;
  ]

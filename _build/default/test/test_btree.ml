(* Tests for the B+tree slice index. *)

module Btree = Demaq.Store.Btree

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let key i = Printf.sprintf "k%05d" i

let test_insert_find () =
  let t = Btree.create ~order:4 () in
  for i = 1 to 200 do Btree.add t (key i) i done;
  check int_ "cardinal" 200 (Btree.cardinal t);
  check bool_ "height grew" true (Btree.height t > 1);
  for i = 1 to 200 do
    check bool_ ("find " ^ key i) true (Btree.find t (key i) = [ i ])
  done;
  check bool_ "absent" true (Btree.find t "nope" = []);
  check bool_ "invariants" true (Result.is_ok (Btree.check_invariants t))

let test_multi_values () =
  let t = Btree.create () in
  Btree.add t "k" 1;
  Btree.add t "k" 2;
  Btree.add t "k" 3;
  check bool_ "insertion order" true (Btree.find t "k" = [ 1; 2; 3 ]);
  check int_ "one key" 1 (Btree.cardinal t);
  Btree.remove t "k" (fun v -> v = 2);
  check bool_ "partial removal" true (Btree.find t "k" = [ 1; 3 ]);
  Btree.remove t "k" (fun _ -> true);
  check bool_ "gone" true (Btree.find t "k" = []);
  check int_ "no keys" 0 (Btree.cardinal t)

let test_reverse_insert () =
  let t = Btree.create ~order:4 () in
  for i = 200 downto 1 do Btree.add t (key i) i done;
  check bool_ "invariants" true (Result.is_ok (Btree.check_invariants t));
  let keys = ref [] in
  Btree.iter t (fun k _ -> keys := k :: !keys);
  check bool_ "iter sorted" true (List.rev !keys = List.init 200 (fun i -> key (i + 1)))

let test_range () =
  let t = Btree.create ~order:4 () in
  for i = 1 to 100 do Btree.add t (key i) i done;
  let r = Btree.range t ~lo:(key 10) ~hi:(key 15) () in
  check bool_ "inclusive range" true (List.map fst r = List.map key [ 10; 11; 12; 13; 14; 15 ]);
  let r = Btree.range t ~hi:(key 3) () in
  check int_ "open low" 3 (List.length r);
  let r = Btree.range t ~lo:(key 98) () in
  check int_ "open high" 3 (List.length r);
  check int_ "full scan" 100 (List.length (Btree.range t ()))

let test_remove_then_reuse () =
  let t = Btree.create ~order:4 () in
  for i = 1 to 50 do Btree.add t (key i) i done;
  for i = 1 to 50 do Btree.remove t (key i) (fun _ -> true) done;
  check int_ "empty" 0 (Btree.cardinal t);
  (* lazy deletion must not break subsequent inserts and lookups *)
  for i = 1 to 50 do Btree.add t (key i) (i * 10) done;
  check bool_ "reinsert works" true
    (List.for_all (fun i -> Btree.find t (key i) = [ i * 10 ]) (List.init 50 (fun i -> i + 1)));
  check bool_ "invariants" true (Result.is_ok (Btree.check_invariants t))

let test_clear () =
  let t = Btree.create () in
  Btree.add t "a" 1;
  Btree.clear t;
  check int_ "cleared" 0 (Btree.cardinal t);
  check bool_ "find empty" true (Btree.find t "a" = [])

let test_bad_order () =
  match Btree.create ~order:2 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* qcheck: agreement with Map over random op sequences *)

module Smap = Map.Make (String)

type op = Add of int * int | Remove of int

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 400)
      (frequency
         [
           (3, map2 (fun k v -> Add (k, v)) (int_bound 60) small_nat);
           (1, map (fun k -> Remove k) (int_bound 60));
         ]))

let prop_model =
  QCheck.Test.make ~name:"btree agrees with Map model" ~count:100
    (QCheck.make gen_ops)
    (fun ops ->
      let t = Btree.create ~order:4 () in
      let model = ref Smap.empty in
      List.iter
        (fun op ->
          match op with
          | Add (k, v) ->
            let k = key k in
            Btree.add t k v;
            model :=
              Smap.update k
                (function Some vs -> Some (vs @ [ v ]) | None -> Some [ v ])
                !model
          | Remove k ->
            let k = key k in
            Btree.remove t k (fun _ -> true);
            model := Smap.remove k !model)
        ops;
      Result.is_ok (Btree.check_invariants t)
      && Smap.for_all (fun k vs -> Btree.find t k = vs) !model
      && Btree.cardinal t = Smap.cardinal !model
      && List.map fst (Btree.range t ())
         = List.map fst (Smap.bindings !model))

let suite =
  [
    ("insert and find", `Quick, test_insert_find);
    ("multi-values per key", `Quick, test_multi_values);
    ("reverse insertion", `Quick, test_reverse_insert);
    ("range scans", `Quick, test_range);
    ("remove then reuse", `Quick, test_remove_then_reuse);
    ("clear", `Quick, test_clear);
    ("order validation", `Quick, test_bad_order);
    QCheck_alcotest.to_alcotest prop_model;
  ]

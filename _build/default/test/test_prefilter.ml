(* Tests for condition pre-filtering (XML filtering, §4.4.1): the static
   requirement analysis and the engine fast path. *)

module Ast = Demaq.Xquery.Ast
module Xq = Demaq.Xquery.Parser
module Prefilter = Demaq.Lang.Prefilter
module S = Demaq.Server

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let reqs src = Prefilter.rule_requirements (Xq.parse src)

let expect_reqs src expected () =
  check (Alcotest.list Alcotest.string) src expected (reqs src)

let analysis_cases =
  [
    (* simple existence conditions *)
    ("descendant path", "if (//order) then do enqueue <x/> into q", [ "order" ]);
    ("child path", "if (/envelope/order) then do enqueue <x/> into q",
     [ "envelope"; "order" ]);
    ("path spine with predicate",
     "if (//order[id = 3]/item) then do enqueue <x/> into q", [ "item"; "order" ]);
    ("and unions",
     "if (//a and //b) then do enqueue <x/> into q", [ "a"; "b" ]);
    ("or intersects",
     "if (//a or //b) then do enqueue <x/> into q", []);
    ("or with common requirement",
     "if ((//a and //shared) or (//b and //shared)) then do enqueue <x/> into q",
     [ "shared" ]);
    ("comparison requires both operand paths",
     "if (//a = //b) then do enqueue <x/> into q", [ "a"; "b" ]);
    ("comparison with literal",
     "if (//kind = 'urgent') then do enqueue <x/> into q", [ "kind" ]);
    ("string() operand unwraps",
     "if (string(//ref) = 'x') then do enqueue <x/> into q", [ "ref" ]);
    ("exists unwraps", "if (exists(//tag)) then do enqueue <x/> into q", [ "tag" ]);
    ("qs:message rooted", "if (qs:message()//note) then do enqueue <x/> into q",
     [ "note" ]);
    (* conservative: no requirement *)
    ("qs:queue not about this message",
     "if (qs:queue(\"other\")//a) then do enqueue <x/> into q", []);
    ("not() gives nothing", "if (not(//a)) then do enqueue <x/> into q", []);
    ("count comparison gives nothing",
     "if (count(//a) = 0) then do enqueue <x/> into q", []);
    ("variable path gives nothing",
     "let $v := //a return if ($v/b) then do enqueue <x/> into q else ()", []);
    ("non-conditional body gives nothing", "do enqueue <x/> into q", []);
    ("else with update disables the guard",
     "if (//a) then do enqueue <x/> into q else do enqueue <y/> into q", []);
    ("else without update keeps the guard",
     "if (//a) then do enqueue <x/> into q else ()", [ "a" ]);
  ]

let test_element_names () =
  let names = Prefilter.element_names (Demaq.xml "<a><b/><c><b/><d>t</d></c></a>") in
  check bool_ "all names found" true
    (List.for_all (fun n -> Prefilter.Names.mem n names) [ "a"; "b"; "c"; "d" ]);
  check bool_ "absent name" false (Prefilter.Names.mem "x" names);
  check bool_ "may_match yes" true
    (Prefilter.may_match ~requirements:[ "a"; "d" ] ~names);
  check bool_ "may_match no" false
    (Prefilter.may_match ~requirements:[ "a"; "zz" ] ~names)

(* ---- engine integration ---- *)

let broker_program =
  (* a brokering rule set: each rule cares about one message type *)
  "create queue in kind basic mode persistent\n\
   create queue out kind basic mode persistent\n"
  ^ String.concat "\n"
      (List.init 20 (fun i ->
           Printf.sprintf
             "create rule r%d for in if (//type%d) then do enqueue <hit n=\"%d\"/> into out"
             i i i))

let run_broker ~use_prefilter =
  let cfg = { S.default_config with S.use_prefilter } in
  let srv = S.deploy ~config:cfg broker_program in
  for i = 0 to 19 do
    ignore
      (S.inject srv ~queue:"in"
         (Demaq.xml (Printf.sprintf "<msg><type%d/></msg>" i)))
  done;
  ignore (S.run srv);
  let out =
    List.sort compare
      (List.map
         (fun m -> Demaq.xml_to_string (Demaq.Message.body m))
         (S.queue_contents srv "out"))
  in
  (out, S.stats srv)

let test_prefilter_equivalent () =
  let out_on, stats_on = run_broker ~use_prefilter:true in
  let out_off, stats_off = run_broker ~use_prefilter:false in
  check bool_ "same output" true (out_on = out_off);
  check int_ "20 hits either way" 20 (List.length out_on);
  (* 20 messages x 20 rules; with prefiltering only the matching rule (and
     the hit messages' zero rules) evaluate *)
  check bool_ "skips counted" true (stats_on.S.prefilter_skips >= 19 * 20 - 20);
  check bool_ "fewer evaluations" true
    (stats_on.S.rule_evaluations < stats_off.S.rule_evaluations);
  check int_ "no skips when disabled" 0 stats_off.S.prefilter_skips

let test_prefilter_never_skips_matching () =
  (* a message containing every required name is evaluated normally *)
  let srv = S.deploy broker_program in
  ignore
    (S.inject srv ~queue:"in"
       (Demaq.xml
          ("<msg>"
          ^ String.concat "" (List.init 20 (fun i -> Printf.sprintf "<type%d/>" i))
          ^ "</msg>")));
  ignore (S.run srv);
  check int_ "all rules fired" 20 (List.length (S.queue_contents srv "out"))

let test_explain_shows_requirements () =
  let srv = S.deploy broker_program in
  let text = S.explain srv in
  let has sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  check bool_ "requirements printed" true (has "requires <type0>")

let suite =
  List.map (fun (n, src, expected) -> (n, `Quick, expect_reqs src expected)) analysis_cases
  @ [
      ("element name synopsis", `Quick, test_element_names);
      ("prefilter preserves behaviour", `Quick, test_prefilter_equivalent);
      ("prefilter never skips a match", `Quick, test_prefilter_never_skips_matching);
      ("explain shows requirements", `Quick, test_explain_shows_requirements);
    ]

(* Tests for lib/xquery: parser, evaluator, function library, updates. *)

module Tree = Demaq.Xml.Tree
module Xml_parser = Demaq.Xml.Parser
module Value = Demaq.Xquery.Value
module Ast = Demaq.Xquery.Ast
module Parser = Demaq.Xquery.Parser
module Eval = Demaq.Xquery.Eval
module Context = Demaq.Xquery.Context
module Update = Demaq.Xquery.Update
module Pp = Demaq.Xquery.Pp

let check = Alcotest.check
let string_ = Alcotest.string
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let default_ctx =
  Xml_parser.parse
    "<offerRequest><requestID>r1</requestID><customerID>c7</customerID><items><item \
     n=\"1\">glue</item><item n=\"2\">paint</item><item n=\"3\">glue</item></items></offerRequest>"

let eval ?(ctx = default_ctx) ?vars src = fst (Eval.run ?vars ~context:ctx src)
let eval_updates ?(ctx = default_ctx) src = snd (Eval.run ~context:ctx src)

(* Render a value compactly for assertions. *)
let show v =
  String.concat ";"
    (List.map
       (function
         | Value.Atom a -> Value.string_of_atomic a
         | Value.Node n -> (
           match Tree.node_tree n with
           | Some t -> Demaq.Xml.Serializer.to_string t
           | None -> Tree.string_value n))
       v)

let expect ?ctx src expected () = check string_ src expected (show (eval ?ctx src))

let expect_error src () =
  match eval src with
  | _ -> Alcotest.failf "expected evaluation error for %s" src
  | exception Context.Eval_error _ -> ()

let expect_syntax_error src () =
  match Parser.parse src with
  | _ -> Alcotest.failf "expected syntax error for %s" src
  | exception Parser.Syntax_error _ -> ()

(* ---- literals, arithmetic, comparisons ---- *)

let atoms =
  [
    ("integer literal", expect "42" "42");
    ("decimal literal", expect "4.5" "4.5");
    ("string literal double", expect {|"hi"|} "hi");
    ("string literal single", expect "'hi'" "hi");
    ("string escape doubling", expect {|"a""b"|} {|a"b|});
    ("string entity", expect {|"a&lt;b"|} "a<b");
    ("empty sequence", expect "()" "");
    ("sequence", expect "(1, 2, 3)" "1;2;3");
    ("nested sequence flattens", expect "(1, (2, 3))" "1;2;3");
    ("addition", expect "1 + 2" "3");
    ("precedence", expect "1 + 2 * 3" "7");
    ("subtraction needs spaces", expect "5 - 3" "2");
    ("division decimal", expect "7 div 2" "3.5");
    ("integer division", expect "7 idiv 2" "3");
    ("modulo", expect "7 mod 2" "1");
    ("unary minus", expect "-(3)" "-3");
    ("unary minus literal", expect "- 3" "-3");
    ("float arithmetic", expect "1.5 + 1" "2.5");
    ("arithmetic with empty is empty", expect "1 + ()" "");
    ("range", expect "2 to 5" "2;3;4;5");
    ("empty range", expect "5 to 2" "");
    ("general eq", expect "1 = 1" "true");
    ("general existential", expect "(1, 2, 3) = (3, 4)" "true");
    ("general existential false", expect "(1, 2) = (3, 4)" "false");
    ("general lt over strings", expect {|"abc" < "abd"|} "true");
    ("untyped coerced numeric", expect "//item[1]/@n = 1" "true");
    ("value comparison", expect "1 eq 1" "true");
    ("value comparison empty", expect "() eq 1" "");
    ("and or", expect "true() and (false() or true())" "true");
    ("and shortcut semantics", expect "false() and 1" "false");
    ("string comparison via =", expect "//customerID = 'c7'" "true");
  ]

let test_value_comparison_multi = expect_error "(1,2) eq 1"

(* ---- paths ---- *)

let paths =
  [
    ("descendant shortcut", expect "//requestID" "<requestID>r1</requestID>");
    ("child path", expect "/offerRequest/customerID" "<customerID>c7</customerID>");
    ("relative from context", expect "items/item[1]" {|<item n="1">glue</item>|});
    ("context item", expect "string(./requestID)" "r1");
    ("wildcard", expect "count(/offerRequest/*)" "3");
    ("attribute axis", expect "string(//item[2]/@n)" "2");
    ("attribute wildcard", expect "count(//item[1]/@*)" "1");
    ("parent step", expect "count(//item[1]/../item)" "3");
    ("text test", expect "//item[1]/text()" "glue");
    ("node test counts text", expect "count(//item[1]/node())" "1");
    ("full axis syntax", expect "count(child::items/child::item)" "3");
    ("descendant axis", expect "count(descendant::item)" "3");
    ("self axis", expect "count(self::node())" "1");
    ("positional predicate", expect "string(//item[2])" "paint");
    ("last()", expect "string(//item[last()])" "glue");
    ("position()", expect "string-join(//item[position() > 1], ',')" "paint,glue");
    ("predicate filter", expect "count(//item[. = 'glue'])" "2");
    ("chained predicates", expect "string(//item[. = 'glue'][2])" "glue");
    ("sequences keep duplicates", expect "count((//item, //item))" "6");
    ("union", expect "count(//item | //customerID)" "4");
    ("union dedup", expect "count(//item | //item)" "3");
    ("absolute in predicate", expect "count(//item[/offerRequest])" "3");
    ("path over sequence", expect "count((//items, //items)/item)" "3");
    ("filter on parenthesized", expect "string((//item)[2])" "paint");
    ("numeric predicate via arithmetic", expect "string(//item[1 + 1])" "paint");
  ]

let test_path_atomic_error = expect_error "(1)/a"

(* ---- control flow ---- *)

let control =
  [
    ("if then else", expect "if (1 = 1) then 'y' else 'n'" "y");
    ("if without else", expect "if (1 = 2) then 'y'" "");
    ("if EBV of nodes", expect "if (//item) then 'has' else 'none'" "has");
    ("let", expect "let $x := 2 return $x * 3" "6");
    ("let shadowing", expect "let $x := 1 return (let $x := 2 return $x)" "2");
    ("let multiple", expect "let $x := 1, $y := 2 return $x + $y" "3");
    ("for", expect "for $i in (1, 2, 3) return $i * 2" "2;4;6");
    ("for two generators", expect "for $i in (1, 2), $j in (10, 20) return $i + $j"
       "11;21;12;22");
    ("for over nodes", expect "for $i in //item return string($i)" "glue;paint;glue");
    ("where", expect "for $i in (1, 2, 3, 4) where $i mod 2 = 0 return $i" "2;4");
    ("order by", expect "for $i in (3, 1, 2) order by $i return $i" "1;2;3");
    ("order by descending", expect "for $i in (3, 1, 2) order by $i descending return $i"
       "3;2;1");
    ("order by string key", expect
       "string-join(for $i in //item order by string($i) return string($i), ',')"
       "glue,glue,paint");
    ("order by two keys", expect
       "for $i in (2, 1, 2) order by $i, 10 - $i return $i" "1;2;2");
    ("some satisfies", expect "some $i in //item satisfies $i = 'paint'" "true");
    ("every satisfies", expect "every $i in //item satisfies string-length($i) > 3" "true");
    ("every fails", expect "every $i in //item satisfies $i = 'glue'" "false");
    ("some over empty is false", expect "some $i in () satisfies true()" "false");
    ("every over empty is true", expect "every $i in () satisfies false()" "true");
    ("nested flwor", expect
       "for $i in (1, 2) return (for $j in (1, 2) where $j >= $i return 10 * $i + $j)"
       "11;12;22");
  ]

let test_undefined_var = expect_error "$nope"

(* ---- constructors ---- *)

let constructors =
  [
    ("empty element", expect "<a/>" "<a/>");
    ("static content", expect "<a><b>x</b></a>" "<a><b>x</b></a>");
    ("enclosed atomic", expect "<a>{1 + 1}</a>" "<a>2</a>");
    ("enclosed node copy", expect "<a>{//requestID}</a>"
       "<a><requestID>r1</requestID></a>");
    ("adjacent atomics space-joined", expect "<a>{(1, 2, 3)}</a>" "<a>1 2 3</a>");
    ("mixed text and expr", expect "<a>n={count(//item)}.</a>" "<a>n=3.</a>");
    ("attribute enclosed", expect {|<a id="{//requestID}"/>|} {|<a id="r1"/>|});
    ("attribute mixed", expect {|<a id="r-{1+1}-x"/>|} {|<a id="r-2-x"/>|});
    ("curly escapes", expect "<a>{{literal}}</a>" "<a>{literal}</a>");
    ("boundary whitespace stripped", expect "<a> {1} </a>" "<a>1</a>");
    ("nested constructors", expect "<a><b>{2}</b><c/></a>" "<a><b>2</b><c/></a>");
    ("constructor entity", expect "<a>&lt;raw&gt;</a>" "<a>&lt;raw&gt;</a>");
    ("constructed node is navigable", expect "count((<a><b/><b/></a>)/b)" "2");
    ("constructor in flwor", expect
       "for $i in (1, 2) return <n v=\"{$i}\"/>" {|<n v="1"/>;<n v="2"/>|});
    ("cdata in constructor", expect "<a><![CDATA[<x>&]]></a>" "<a>&lt;x&gt;&amp;</a>");
  ]

(* ---- function library ---- *)

let functions =
  [
    ("count", expect "count(//item)" "3");
    ("exists", expect "exists(//nothing)" "false");
    ("empty", expect "empty(//nothing)" "true");
    ("not", expect "not(())" "true");
    ("boolean of string", expect "boolean('x')" "true");
    ("string of node", expect "string(//customerID)" "c7");
    ("string of context", expect "//requestID/string()" "r1");
    ("string empty seq", expect "string(())" "");
    ("data", expect "data(//item[2])" "paint");
    ("concat", expect "concat('a', 'b', 'c')" "abc");
    ("concat atomizes", expect "concat(//requestID, '-', 1)" "r1-1");
    ("string-join", expect "string-join(('a', 'b'), '+')" "a+b");
    ("string-length", expect "string-length('hello')" "5");
    ("string-length of context", expect "//customerID/string-length()" "2");
    ("contains", expect "contains('hello', 'ell')" "true");
    ("contains empty", expect "contains('x', '')" "true");
    ("starts-with", expect "starts-with('hello', 'he')" "true");
    ("ends-with", expect "ends-with('hello', 'lo')" "true");
    ("substring 2-arg", expect "substring('hello', 2)" "ello");
    ("substring 3-arg", expect "substring('hello', 2, 3)" "ell");
    ("substring rounding", expect "substring('hello', 1.5, 2.6)" "ell");
    ("substring-before", expect "substring-before('a=b', '=')" "a");
    ("substring-before absent", expect "substring-before('ab', 'x')" "");
    ("substring-after", expect "substring-after('a=b=c', '=')" "b=c");
    ("normalize-space", expect "normalize-space('  a   b ')" "a b");
    ("upper-case", expect "upper-case('aBc')" "ABC");
    ("lower-case", expect "lower-case('AbC')" "abc");
    ("tokenize", expect "tokenize('a,b,,c', ',')" "a;b;;c");
    ("number", expect "number('3.5') * 2" "7");
    ("sum", expect "sum((1, 2, 3))" "6");
    ("sum of empty", expect "sum(())" "");
    ("avg", expect "avg((1, 2, 3))" "2");
    ("max numeric", expect "max((1, 5, 3))" "5");
    ("min string", expect "min(('b', 'a'))" "a");
    ("abs", expect "abs(0 - 5)" "5");
    ("floor", expect "floor(2.7)" "2");
    ("ceiling", expect "ceiling(2.1)" "3");
    ("round", expect "round(2.5)" "3");
    ("distinct-values", expect "distinct-values(//item)" "glue;paint");
    ("distinct-values numeric", expect "distinct-values((1, '1', 2))" "1;2");
    ("reverse", expect "reverse((1, 2, 3))" "3;2;1");
    ("index-of", expect "index-of((10, 20, 10), 10)" "1;3");
    ("subsequence", expect "subsequence((1, 2, 3, 4), 2, 2)" "2;3");
    ("insert-before", expect "insert-before((1, 3), 2, (2))" "1;2;3");
    ("remove", expect "remove((1, 2, 3), 2)" "1;3");
    ("name", expect "name(//item[1])" "item");
    ("local-name of context", expect "//item[1]/local-name()" "item");
    ("root returns document", expect "count(root(//item[1])/offerRequest)" "1");
    ("fn: prefix accepted", expect "fn:count(//item)" "3");
    ("position in predicate", expect "//item[position() = 2]/string()" "paint");
  ]

let test_unknown_function = expect_error "no-such-fn(1)"
let test_fn_error = expect_error "error('boom')"
let test_arity_error = expect_error "count(1, 2)"

(* ---- updates ---- *)

let test_enqueue_update () =
  match eval_updates "do enqueue <m>{//requestID}</m> into q1 with k value 'v' with n value 7" with
  | [ Update.Enqueue { payload; queue; props } ] ->
    check string_ "queue" "q1" queue;
    check string_ "payload" "<m><requestID>r1</requestID></m>"
      (Demaq.Xml.Serializer.to_string payload);
    check int_ "props" 2 (List.length props);
    check string_ "prop k" "v" (Value.string_of_atomic (List.assoc "k" props));
    check string_ "prop n" "7" (Value.string_of_atomic (List.assoc "n" props))
  | _ -> Alcotest.fail "expected one enqueue"

let test_reset_update () =
  (match eval_updates "do reset" with
   | [ Update.Reset { slicing = None; key = None } ] -> ()
   | _ -> Alcotest.fail "expected bare reset");
  match eval_updates "do reset slicing orders key 'k1'" with
  | [ Update.Reset { slicing = Some "orders"; key = Some k } ] ->
    check string_ "key" "k1" (Value.string_of_atomic k)
  | _ -> Alcotest.fail "expected parameterized reset"

let test_conditional_updates () =
  check int_ "taken branch emits" 1
    (List.length (eval_updates "if (//item) then do enqueue <x/> into q else ()"));
  check int_ "untaken branch silent" 0
    (List.length (eval_updates "if (//missing) then do enqueue <x/> into q else ()"))

let test_flwor_updates () =
  let ups = eval_updates "for $i in //item return do enqueue <got>{string($i)}</got> into q" in
  check int_ "three updates" 3 (List.length ups)

let test_update_order () =
  match eval_updates "(do enqueue <a/> into q1, do enqueue <b/> into q2)" with
  | [ Update.Enqueue { queue = "q1"; _ }; Update.Enqueue { queue = "q2"; _ } ] -> ()
  | _ -> Alcotest.fail "updates out of order"

let test_enqueue_payload_errors () =
  expect_error "do enqueue 'atomic' into q" ();
  expect_error "do enqueue () into q" ();
  expect_error "do enqueue (//item) into q with p value (1, 2)" ()

let test_enqueue_document_node () =
  (* enqueueing the context document node extracts its element *)
  match eval_updates "do enqueue (/) into q" with
  | [ Update.Enqueue { payload = Tree.Element e; _ } ] ->
    check string_ "root elem" "offerRequest" (Demaq.Xml.Name.local e.Tree.name)
  | _ -> Alcotest.fail "expected element payload"

(* ---- syntax errors ---- *)

let syntax_errors =
  List.map
    (fun src -> ("syntax error: " ^ src, `Quick, expect_syntax_error src))
    [
      "1 +";
      "if (1) then";
      "let $x = 1 return $x";
      "for $x in return 1";
      "<a><b></a>";
      "do enqueue <x/>";
      "do enqueue <x/> into";
      "(1, 2";
      "//[1]";
      "some $x satisfies 1";
      "\"unterminated";
      "1 ! 2";
    ]

(* ---- comments and whitespace ---- *)

let comments =
  [
    ("comment ignored", expect "1 (: comment :) + 2" "3");
    ("nested comment", expect "1 (: a (: b :) c :) + 1" "2");
    ("comment in path", expect "count(//item (: all items :))" "3");
  ]

(* ---- pretty-printer round trips ---- *)

let pp_roundtrip_cases =
  [
    "//requestID";
    "/offerRequest/customerID";
    "count(//item[. = 'glue'])";
    "if (//item) then <a>{1}</a> else ()";
    "for $i in (1, 2) where $i > 1 order by $i descending return $i * 2";
    "let $x := //item return $x[1]";
    "some $i in //item satisfies contains($i, 'aint')";
    "do enqueue <m>{//requestID}</m> into q with k value 'v'";
    "do reset slicing s key 'k'";
    {|<a id="{1}">t{2}<b/></a>|};
    "(1, 2)[. mod 2 = 0]";
    "qs:slice()[/offer]";
    "-(1 + 2)";
    "1 to 5";
    "//item | //customerID";
    "string(//item[last()])";
    "@n";
    "../item";
    "5 idiv 2 eq 2";
  ]

let test_pp_roundtrip () =
  List.iter
    (fun src ->
      let once = Parser.parse src in
      let printed = Pp.to_string once in
      let again =
        try Parser.parse printed
        with Parser.Syntax_error { msg; _ } ->
          Alcotest.failf "re-parse of %S (printed from %S) failed: %s" printed src msg
      in
      match fst (Eval.run ~context:default_ctx src) with
      | v1 ->
        let v2 = fst (Eval.run ~context:default_ctx (Pp.to_string again)) in
        check string_ ("pp roundtrip: " ^ src) (show v1) (show v2)
      | exception Context.Eval_error _ -> ()
        (* qs: functions need an engine host; the re-parse check above
           already covered the syntax roundtrip *))
    pp_roundtrip_cases

(* ---- qcheck: random arithmetic expressions evaluate consistently ---- *)

let gen_arith =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then map string_of_int (int_range 0 99)
      else
        frequency
          [
            (1, map string_of_int (int_range 0 99));
            ( 3,
              map3
                (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
                (oneofl [ "+"; "-"; "*" ])
                (self (depth - 1))
                (self (depth - 1)) );
          ])
    3

(* A tiny reference evaluator for the generated grammar. *)
let rec ref_eval s =
  let s = String.trim s in
  if s.[0] <> '(' then int_of_string s
  else begin
    (* strip outer parens, split at top level on the operator *)
    let inner = String.sub s 1 (String.length s - 2) in
    let depth = ref 0 in
    let split = ref (-1) in
    String.iteri
      (fun i c ->
        if c = '(' then incr depth
        else if c = ')' then decr depth
        else if !depth = 0 && !split < 0 && (c = '+' || c = '*') && i > 0 then split := i
        else if
          !depth = 0 && !split < 0 && c = '-' && i > 0 && inner.[i - 1] = ' '
        then split := i)
      inner;
    let i = !split in
    let l = ref_eval (String.sub inner 0 i) in
    let r = ref_eval (String.sub inner (i + 1) (String.length inner - i - 1)) in
    match inner.[i] with
    | '+' -> l + r
    | '-' -> l - r
    | '*' -> l * r
    | _ -> assert false
  end

let prop_arith =
  QCheck.Test.make ~name:"random arithmetic agrees with reference" ~count:300
    (QCheck.make gen_arith ~print:Fun.id)
    (fun src -> show (eval src) = string_of_int (ref_eval src))

let prop_flwor_map =
  QCheck.Test.make ~name:"for over 1 to n behaves like List.init" ~count:100
    QCheck.(int_range 0 30)
    (fun n ->
      let src = Printf.sprintf "for $i in 1 to %d return $i * $i" n in
      show (eval src)
      = String.concat ";" (List.init n (fun i -> string_of_int ((i + 1) * (i + 1)))))

let quick name f = (name, `Quick, f)
let table cases = List.map (fun (name, f) -> (name, `Quick, f)) cases

let suite =
  table atoms @ table paths @ table control @ table constructors @ table functions
  @ [
      quick "value comparison multi-item errors" test_value_comparison_multi;
      quick "path over atomic errors" test_path_atomic_error;
      quick "undefined variable errors" test_undefined_var;
      quick "unknown function errors" test_unknown_function;
      quick "fn:error raises" test_fn_error;
      quick "wrong arity errors" test_arity_error;
      quick "enqueue update" test_enqueue_update;
      quick "reset update" test_reset_update;
      quick "conditional updates" test_conditional_updates;
      quick "flwor updates" test_flwor_updates;
      quick "update ordering" test_update_order;
      quick "enqueue payload errors" test_enqueue_payload_errors;
      quick "enqueue document node" test_enqueue_document_node;
      quick "pp roundtrip preserves semantics" test_pp_roundtrip;
    ]
  @ syntax_errors @ table comments
  @ [
      QCheck_alcotest.to_alcotest prop_arith;
      QCheck_alcotest.to_alcotest prop_flwor_map;
    ]

(* Direct tests for the XQuery value model: casts, effective boolean
   value, comparison semantics, arithmetic promotion. These back the
   via-evaluator tests in test_xquery.ml with table-style coverage of the
   Value module itself. *)

module Value = Demaq.Value

let check = Alcotest.check
let bool_ = Alcotest.bool
let string_ = Alcotest.string

open Value

(* ---- casts ---- *)

let cast_ok ty a expected () =
  match cast ty a with
  | Ok r -> check string_ "cast result" expected (string_of_atomic r)
  | Error e -> Alcotest.failf "cast failed: %s" e

let cast_fails ty a () =
  match cast ty a with
  | Ok r -> Alcotest.failf "expected failure, got %s" (string_of_atomic r)
  | Error _ -> ()

let cast_cases =
  [
    ("string of int", cast_ok T_string (Integer 42) "42");
    ("string of bool", cast_ok T_string (Boolean true) "true");
    ("string of decimal", cast_ok T_string (Decimal 2.5) "2.5");
    ("int of string", cast_ok T_integer (String " 7 ") "7");
    ("int of decimal truncates", cast_ok T_integer (Decimal 3.9) "3");
    ("int of bool", cast_ok T_integer (Boolean true) "1");
    ("int of untyped", cast_ok T_integer (Untyped "12") "12");
    ("decimal of int", cast_ok T_decimal (Integer 5) "5");
    ("decimal of string", cast_ok T_decimal (String "2.25") "2.25");
    ("bool of one", cast_ok T_boolean (Integer 1) "true");
    ("bool of zero", cast_ok T_boolean (Integer 0) "false");
    ("bool of 'true'", cast_ok T_boolean (String "true") "true");
    ("bool of '0'", cast_ok T_boolean (Untyped "0") "false");
    ("bool of nonzero decimal", cast_ok T_boolean (Decimal 0.5) "true");
    ("int of junk fails", cast_fails T_integer (String "pear"));
    ("decimal of junk fails", cast_fails T_decimal (Untyped ""));
    ("bool of junk fails", cast_fails T_boolean (String "maybe"));
  ]

let test_atomic_type_names () =
  List.iter
    (fun (name, expected) ->
      match atomic_type_of_string name with
      | Ok ty -> check string_ name expected (atomic_type_name ty)
      | Error e -> Alcotest.fail e)
    [
      ("xs:string", "xs:string"); ("string", "xs:string");
      ("xs:integer", "xs:integer"); ("int", "xs:integer"); ("long", "xs:integer");
      ("xs:decimal", "xs:decimal"); ("double", "xs:decimal"); ("float", "xs:decimal");
      ("xs:boolean", "xs:boolean");
    ];
  check bool_ "unknown type" true (Result.is_error (atomic_type_of_string "xs:date"))

(* ---- effective boolean value ---- *)

let test_ebv_table () =
  let t v = check bool_ "ebv true" true (ebv v)
  and f v = check bool_ "ebv false" false (ebv v) in
  f [];
  t [ Atom (Boolean true) ];
  f [ Atom (Boolean false) ];
  t [ Atom (String "x") ];
  f [ Atom (String "") ];
  f [ Atom (Untyped "") ];
  t [ Atom (Integer 1) ];
  f [ Atom (Integer 0) ];
  f [ Atom (Decimal 0.0) ];
  f [ Atom (Decimal Float.nan) ];
  t [ Atom (Decimal 0.1) ];
  (* any node-first sequence is true regardless of length *)
  let n = Demaq.Xquery.Eval.node_of_tree (Demaq.xml "<a/>") in
  t [ Node n ];
  t [ Node n; Atom (Integer 0) ];
  match ebv [ Atom (Integer 1); Atom (Integer 2) ] with
  | _ -> Alcotest.fail "expected type error"
  | exception Type_error _ -> ()

(* ---- comparisons ---- *)

let test_compare_atomic_matrix () =
  let lt a b = check bool_ "lt" true (compare_atomic a b < 0)
  and eq a b = check bool_ "eq" true (compare_atomic a b = 0) in
  eq (Integer 3) (Integer 3);
  lt (Integer 3) (Integer 4);
  eq (Integer 3) (Decimal 3.0);
  lt (Decimal 3.5) (Integer 4);
  (* untyped next to numbers compares numerically *)
  eq (Untyped "10") (Integer 10);
  lt (Integer 9) (Untyped "10");
  (* strings compare lexicographically — "10" < "9" *)
  lt (String "10") (String "9");
  eq (String "a") (Untyped "a");
  lt (Boolean false) (Boolean true)

let test_general_compare_existential () =
  let seq l = List.map (fun i -> Atom (Integer i)) l in
  check bool_ "exists equal" true (general_compare `Eq (seq [ 1; 2 ]) (seq [ 2; 9 ]));
  check bool_ "none equal" false (general_compare `Eq (seq [ 1; 2 ]) (seq [ 3 ]));
  check bool_ "empty never" false (general_compare `Eq [] (seq [ 1 ]));
  (* ne is existential too: (1,2) != (1) holds because 2 != 1 *)
  check bool_ "ne existential" true (general_compare `Ne (seq [ 1; 2 ]) (seq [ 1 ]))

let test_arith_promotion () =
  let show v = String.concat ";" (List.map string_of_atomic (atomize v)) in
  check string_ "int+int stays int" "5"
    (show (arith `Add [ Atom (Integer 2) ] [ Atom (Integer 3) ]));
  check string_ "int+decimal promotes" "5.5"
    (show (arith `Add [ Atom (Integer 2) ] [ Atom (Decimal 3.5) ]));
  check string_ "untyped ints" "6"
    (show (arith `Mul [ Atom (Untyped "2") ] [ Atom (Untyped "3") ]));
  check string_ "div always decimal-capable" "2.5"
    (show (arith `Div [ Atom (Integer 5) ] [ Atom (Integer 2) ]));
  check string_ "empty propagates" "" (show (arith `Add [] [ Atom (Integer 1) ]));
  (match arith `Add [ Atom (String "x") ] [ Atom (Integer 1) ] with
   | _ -> Alcotest.fail "expected type error"
   | exception Type_error _ -> ());
  match arith `Idiv [ Atom (Integer 1) ] [ Atom (Integer 0) ] with
  | _ -> Alcotest.fail "expected division error"
  | exception Type_error _ -> ()

let test_doc_order_dedup () =
  let doc = Demaq.xml "<r><a/><b/></r>" in
  let n = Demaq.Xquery.Eval.node_of_tree doc in
  let kids = Demaq.Tree.children n in
  let a = List.nth kids 0 and b = List.nth kids 1 in
  let v = doc_order_dedup [ Node b; Node a; Node b ] in
  check bool_ "sorted and deduped" true
    (match v with
     | [ Node x; Node y ] -> Demaq.Tree.same_node x a && Demaq.Tree.same_node y b
     | _ -> false);
  (* mixed sequences pass through untouched *)
  let mixed = [ Atom (Integer 1); Node a ] in
  check bool_ "mixed unchanged" true (doc_order_dedup mixed == mixed)

let test_decimal_rendering () =
  check string_ "integral decimal" "440" (string_of_atomic (Decimal 440.00000000000006));
  check string_ "fraction" "0.25" (string_of_atomic (Decimal 0.25));
  check string_ "negative" "-3" (string_of_atomic (Decimal (-3.0)))

let suite =
  List.map (fun (n, f) -> (n, `Quick, f)) cast_cases
  @ [
      ("atomic type names", `Quick, test_atomic_type_names);
      ("effective boolean value table", `Quick, test_ebv_table);
      ("compare_atomic matrix", `Quick, test_compare_atomic_matrix);
      ("general comparison is existential", `Quick, test_general_compare_existential);
      ("arithmetic promotion", `Quick, test_arith_promotion);
      ("doc order dedup", `Quick, test_doc_order_dedup);
      ("decimal rendering", `Quick, test_decimal_rendering);
    ]

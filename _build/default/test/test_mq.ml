(* Tests for lib/mq: property computation, schema enforcement, slicing
   semantics, retention GC (paper §2). *)

module Tree = Demaq.Xml.Tree
module Schema = Demaq.Xml.Schema
module Value = Demaq.Value
module Ast = Demaq.Xquery.Ast
module Xq = Demaq.Xquery.Parser
module Store = Demaq.Store.Message_store
module Defs = Demaq.Mq.Defs
module Message = Demaq.Message
module Qm = Demaq.Mq.Queue_manager

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let xml = Demaq.xml

(* A fixture mirroring the paper's §2.2/§2.3 declarations. *)
let fixture ?clock () =
  let st = Store.open_store Store.default_config in
  let qm = Qm.create ?clock st in
  List.iter
    (fun name -> Qm.add_queue qm (Defs.queue name))
    [ "order"; "confirmation"; "crm"; "finance"; "legal"; "customer" ];
  Qm.add_queue qm (Defs.queue ~mode:Defs.Transient "scratch");
  (* create property orderID as xs:string fixed
       queue order value //orderID
       queue confirmation value /confirmedOrder/ID         (§2.2) *)
  Qm.add_property qm
    {
      Defs.pname = "orderID";
      ptype = Value.T_string;
      disposition = Defs.Fixed;
      per_queue =
        [
          ([ "order" ], Xq.parse "//orderID");
          ([ "confirmation" ], Xq.parse "/confirmedOrder/ID");
        ];
    };
  (* create property isVIPorder as xs:boolean inherited
       queue crm, finance, legal, customer value false     (§2.2) *)
  Qm.add_property qm
    {
      Defs.pname = "isVIPorder";
      ptype = Value.T_boolean;
      disposition = Defs.Inherited;
      per_queue = [ ([ "crm"; "finance"; "legal"; "customer" ], Xq.parse "false()") ];
    };
  (* create slicing orders on orderID                      (§2.3.1) *)
  Qm.add_slicing qm { Defs.sname = "orders"; slice_property = "orderID" };
  qm

let enqueue ?rule ?trigger ?explicit qm queue payload =
  let txn = Store.begin_txn (Qm.store qm) in
  let result = Qm.enqueue qm txn ?rule ?trigger ?explicit ~queue ~payload:(xml payload) () in
  Store.commit txn;
  result

let enqueue_ok ?rule ?trigger ?explicit qm queue payload =
  match enqueue ?rule ?trigger ?explicit qm queue payload with
  | Ok m -> m
  | Error e -> Alcotest.failf "enqueue failed: %s" (Qm.error_to_string e)

let prop_str m name =
  Option.map Value.string_of_atomic (Message.property m name)

(* ---- property computation ---- *)

let test_computed_property () =
  let qm = fixture () in
  let m = enqueue_ok qm "order" "<order><orderID>o1</orderID></order>" in
  check (Alcotest.option string_) "computed from body" (Some "o1") (prop_str m "orderID");
  (* different expression for the confirmation queue *)
  let m2 = enqueue_ok qm "confirmation" "<confirmedOrder><ID>o2</ID></confirmedOrder>" in
  check (Alcotest.option string_) "per-queue expression" (Some "o2") (prop_str m2 "orderID")

let test_computed_property_absent () =
  let qm = fixture () in
  let m = enqueue_ok qm "order" "<order/>" in
  check (Alcotest.option string_) "no value when path empty" None (prop_str m "orderID")

let test_fixed_property_rejects_explicit () =
  let qm = fixture () in
  match
    enqueue qm "order" ~explicit:[ ("orderID", Value.String "forced") ]
      "<order><orderID>o1</orderID></order>"
  with
  | Error (Qm.Fixed_property_set { property = "orderID" }) -> ()
  | _ -> Alcotest.fail "expected Fixed_property_set"

let test_inherited_property () =
  let qm = fixture () in
  (* default value from the expression when nothing to inherit *)
  let m = enqueue_ok qm "crm" "<req/>" in
  check (Alcotest.option string_) "default false" (Some "false") (prop_str m "isVIPorder");
  (* explicit wins over the default *)
  let vip =
    enqueue_ok qm "crm" ~explicit:[ ("isVIPorder", Value.Boolean true) ] "<req/>"
  in
  check (Alcotest.option string_) "explicit true" (Some "true") (prop_str vip "isVIPorder");
  (* and propagates to messages triggered by it *)
  let child = enqueue_ok qm "finance" ~trigger:vip "<check/>" in
  check (Alcotest.option string_) "inherited true" (Some "true")
    (prop_str child "isVIPorder");
  let grandchild = enqueue_ok qm "customer" ~trigger:child "<reply/>" in
  check (Alcotest.option string_) "inherited transitively" (Some "true")
    (prop_str grandchild "isVIPorder")

let test_property_cast () =
  let qm = fixture () in
  (* explicit string "true" is cast to the declared xs:boolean *)
  let m =
    enqueue_ok qm "crm" ~explicit:[ ("isVIPorder", Value.String "true") ] "<r/>"
  in
  check bool_ "cast to boolean" true
    (Message.property m "isVIPorder" = Some (Value.Boolean true));
  match enqueue qm "crm" ~explicit:[ ("isVIPorder", Value.String "maybe") ] "<r/>" with
  | Error (Qm.Property_error _) -> ()
  | _ -> Alcotest.fail "expected cast error"

let test_system_properties () =
  let ticks = ref 100 in
  let qm = fixture ~clock:(fun () -> incr ticks; !ticks) () in
  let m = enqueue_ok ~rule:"myRule" qm "crm" "<r/>" in
  check (Alcotest.option string_) "creating rule recorded" (Some "myRule")
    (prop_str m Defs.Sysprop.rule);
  check bool_ "timestamp from clock" true
    (match Message.property m Defs.Sysprop.timestamp with
     | Some (Value.Integer t) -> t > 100
     | _ -> false);
  (* connection handles propagate automatically (§2.2) *)
  let with_conn =
    enqueue_ok qm "crm" ~explicit:[ (Defs.Sysprop.connection, Value.Integer 7) ] "<r/>"
  in
  let reply = enqueue_ok qm "customer" ~trigger:with_conn "<ok/>" in
  check (Alcotest.option string_) "connection propagated" (Some "7")
    (prop_str reply Defs.Sysprop.connection)

let test_undeclared_explicit_props () =
  let qm = fixture () in
  let m =
    enqueue_ok qm "crm"
      ~explicit:[ ("timeout", Value.Integer 30); ("target", Value.String "finance") ]
      "<r/>"
  in
  check (Alcotest.option string_) "free-form timeout" (Some "30") (prop_str m "timeout");
  check (Alcotest.option string_) "free-form target" (Some "finance")
    (prop_str m "target")

(* ---- schema enforcement ---- *)

let test_schema_enforcement () =
  let st = Store.open_store Store.default_config in
  let qm = Qm.create st in
  let schema =
    match Schema.parse "element order { orderID } element orderID { text }" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Qm.add_queue qm (Defs.queue ~schema "orders");
  (match enqueue qm "orders" "<order><orderID>1</orderID></order>" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "valid rejected: %s" (Qm.error_to_string e));
  match enqueue qm "orders" "<order><unexpected/></order>" with
  | Error (Qm.Schema_violation _) -> ()
  | _ -> Alcotest.fail "expected schema violation"

let test_unknown_queue () =
  let qm = fixture () in
  match enqueue qm "nope" "<x/>" with
  | Error (Qm.Unknown_queue "nope") -> ()
  | _ -> Alcotest.fail "expected unknown queue"

(* ---- slicing (§2.3, Fig. 2) ---- *)

let order_msg id = Printf.sprintf "<order><orderID>%s</orderID></order>" id
let conf_msg id = Printf.sprintf "<confirmedOrder><ID>%s</ID></confirmedOrder>" id

let test_slice_groups_across_queues () =
  let qm = fixture () in
  let _o1 = enqueue_ok qm "order" (order_msg "A") in
  let _o2 = enqueue_ok qm "order" (order_msg "B") in
  let _c1 = enqueue_ok qm "confirmation" (conf_msg "A") in
  let slice_a = Qm.slice_messages qm ~slicing:"orders" ~key:"A" () in
  check int_ "order+confirmation for A" 2 (List.length slice_a);
  check bool_ "spans queues" true
    (List.sort compare (List.map (fun m -> m.Message.queue) slice_a)
     = [ "confirmation"; "order" ]);
  check int_ "B separate" 1 (List.length (Qm.slice_messages qm ~slicing:"orders" ~key:"B" ()));
  check bool_ "keys listed" true
    (List.sort compare (Qm.slice_keys qm ~slicing:"orders") = [ "A"; "B" ])

let test_slice_index_and_scan_agree () =
  let qm = fixture () in
  for i = 1 to 30 do
    let id = Printf.sprintf "K%d" (i mod 5) in
    ignore (enqueue_ok qm "order" (order_msg id));
    if i mod 3 = 0 then ignore (enqueue_ok qm "confirmation" (conf_msg id))
  done;
  List.iter
    (fun key ->
      let by_index =
        List.map (fun m -> m.Message.rid)
          (Qm.slice_messages qm ~use_index:true ~slicing:"orders" ~key ())
      in
      let by_scan =
        List.sort compare
          (List.map (fun m -> m.Message.rid)
             (Qm.slice_messages qm ~use_index:false ~slicing:"orders" ~key ()))
      in
      check bool_ ("index = scan for " ^ key) true (List.sort compare by_index = by_scan))
    [ "K0"; "K1"; "K2"; "K3"; "K4"; "missing" ]

let test_slice_reset_lifetimes () =
  let qm = fixture () in
  let st = Qm.store qm in
  ignore (enqueue_ok qm "order" (order_msg "A"));
  check int_ "one member" 1 (List.length (Qm.slice_messages qm ~slicing:"orders" ~key:"A" ()));
  let txn = Store.begin_txn st in
  Qm.reset_slice qm txn ~slicing:"orders" ~key:"A";
  Store.commit txn;
  check int_ "invisible after reset" 0
    (List.length (Qm.slice_messages qm ~slicing:"orders" ~key:"A" ()));
  (* a new lifetime starts: new messages are visible again *)
  ignore (enqueue_ok qm "order" (order_msg "A"));
  let members = Qm.slice_messages qm ~slicing:"orders" ~key:"A" () in
  check int_ "new lifetime member" 1 (List.length members);
  (* the old message is still physically there until GC *)
  check int_ "order queue keeps both" 2 (Qm.queue_length qm "order")

(* ---- retention (§2.3.3) ---- *)

let mark qm m =
  let txn = Store.begin_txn (Qm.store qm) in
  Qm.mark_processed qm txn m;
  Store.commit txn

let test_retention_rules () =
  let qm = fixture () in
  let sliced = enqueue_ok qm "order" (order_msg "A") in
  let unsliced = enqueue_ok qm "crm" "<r/>" in
  (* unprocessed messages are never deletable *)
  check bool_ "unprocessed sliced" false (Qm.deletable qm sliced);
  check bool_ "unprocessed unsliced" false (Qm.deletable qm unsliced);
  mark qm sliced;
  mark qm unsliced;
  let sliced = Option.get (Qm.get qm sliced.Message.rid) in
  let unsliced = Option.get (Qm.get qm unsliced.Message.rid) in
  (* processed and in no slice: deletable; in a live slice: retained *)
  check bool_ "processed in live slice retained" false (Qm.deletable qm sliced);
  check bool_ "processed in no slice deletable" true (Qm.deletable qm unsliced);
  (* after the slice is reset, the sliced message becomes deletable too *)
  let txn = Store.begin_txn (Qm.store qm) in
  Qm.reset_slice qm txn ~slicing:"orders" ~key:"A";
  Store.commit txn;
  check bool_ "deletable after reset" true (Qm.deletable qm sliced)

let test_gc () =
  let qm = fixture () in
  let m1 = enqueue_ok qm "order" (order_msg "A") in
  let m2 = enqueue_ok qm "order" (order_msg "B") in
  let m3 = enqueue_ok qm "crm" "<r/>" in
  mark qm m1;
  mark qm m2;
  mark qm m3;
  (* only the unsliced m3 can go *)
  check int_ "first gc" 1 (Qm.gc qm);
  check bool_ "m3 gone" true (Qm.get qm m3.Message.rid = None);
  check bool_ "m1 kept" true (Qm.get qm m1.Message.rid <> None);
  let txn = Store.begin_txn (Qm.store qm) in
  Qm.reset_slice qm txn ~slicing:"orders" ~key:"A";
  Store.commit txn;
  check int_ "second gc" 1 (Qm.gc qm);
  check bool_ "m1 gone" true (Qm.get qm m1.Message.rid = None);
  check bool_ "m2 survives (own slice live)" true (Qm.get qm m2.Message.rid <> None);
  (* index entries for collected messages are dropped *)
  check bool_ "keys shrunk" true (Qm.slice_keys qm ~slicing:"orders" = [ "B" ])

let test_multi_slice_retention () =
  (* A message in two slicings is retained until BOTH are reset. *)
  let st = Store.open_store Store.default_config in
  let qm = Qm.create st in
  Qm.add_queue qm (Defs.queue "q");
  List.iter
    (fun (p, path) ->
      Qm.add_property qm
        {
          Defs.pname = p;
          ptype = Value.T_string;
          disposition = Defs.Free;
          per_queue = [ ([ "q" ], Xq.parse path) ];
        })
    [ ("byOrder", "//oid"); ("byCustomer", "//cid") ];
  Qm.add_slicing qm { Defs.sname = "orders"; slice_property = "byOrder" };
  Qm.add_slicing qm { Defs.sname = "customers"; slice_property = "byCustomer" };
  let m = enqueue_ok qm "q" "<m><oid>o1</oid><cid>c1</cid></m>" in
  mark qm m;
  let m = Option.get (Qm.get qm m.Message.rid) in
  check bool_ "held by two slices" false (Qm.deletable qm m);
  let txn = Store.begin_txn st in
  Qm.reset_slice qm txn ~slicing:"orders" ~key:"o1";
  Store.commit txn;
  check bool_ "still held by customers" false (Qm.deletable qm m);
  let txn = Store.begin_txn st in
  Qm.reset_slice qm txn ~slicing:"customers" ~key:"c1";
  Store.commit txn;
  check bool_ "released by both" true (Qm.deletable qm m);
  check int_ "gc collects" 1 (Qm.gc qm)

(* ---- persistence of the mq layer ---- *)

let test_mq_recovery_rebuilds_indexes () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "demaq-mq-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let cfg = Store.durable_config ~sync:Demaq.Store.Wal.Sync_never dir in
  let build st =
    let qm = Qm.create st in
    Qm.add_queue qm (Defs.queue "order");
    Qm.add_property qm
      {
        Defs.pname = "orderID";
        ptype = Value.T_string;
        disposition = Defs.Fixed;
        per_queue = [ ([ "order" ], Xq.parse "//orderID") ];
      };
    Qm.add_slicing qm { Defs.sname = "orders"; slice_property = "orderID" };
    Qm.rebuild_indexes qm;
    qm
  in
  let st = Store.open_store cfg in
  let qm = build st in
  ignore (enqueue_ok qm "order" (order_msg "A"));
  ignore (enqueue_ok qm "order" (order_msg "A"));
  ignore (enqueue_ok qm "order" (order_msg "B"));
  Store.close st;
  let st2 = Store.open_store cfg in
  let qm2 = build st2 in
  check int_ "A slice rebuilt" 2
    (List.length (Qm.slice_messages qm2 ~slicing:"orders" ~key:"A" ()));
  check int_ "B slice rebuilt" 1
    (List.length (Qm.slice_messages qm2 ~slicing:"orders" ~key:"B" ()));
  (* properties survive via the extra blob *)
  let m = List.hd (Qm.queue_messages qm2 "order") in
  check (Alcotest.option string_) "props recovered" (Some "A") (prop_str m "orderID");
  Store.close st2

(* ---- qcheck: retention invariant ---- *)

let prop_retention =
  QCheck.Test.make ~name:"gc never collects a live-slice or unprocessed message"
    ~count:60
    QCheck.(small_list (pair (int_bound 4) bool))
    (fun script ->
      let qm = fixture () in
      let all = ref [] in
      List.iter
        (fun (k, process) ->
          let m = enqueue_ok qm "order" (order_msg (string_of_int k)) in
          if process then mark qm m;
          all := m.Message.rid :: !all)
        script;
      (* reset slices 0 and 1 *)
      let txn = Store.begin_txn (Qm.store qm) in
      Qm.reset_slice qm txn ~slicing:"orders" ~key:"0";
      Qm.reset_slice qm txn ~slicing:"orders" ~key:"1";
      Store.commit txn;
      ignore (Qm.gc qm);
      List.for_all
        (fun rid ->
          match Qm.get qm rid with
          | Some m ->
            (* survivor: must be unprocessed or in a live slice *)
            (not m.Message.processed)
            || List.exists (Qm.membership_current qm m) m.Message.memberships
          | None -> true)
        !all)

let suite =
  [
    ("computed properties per queue", `Quick, test_computed_property);
    ("computed property absent when path empty", `Quick, test_computed_property_absent);
    ("fixed property rejects explicit", `Quick, test_fixed_property_rejects_explicit);
    ("inherited properties", `Quick, test_inherited_property);
    ("property casting", `Quick, test_property_cast);
    ("system properties", `Quick, test_system_properties);
    ("undeclared explicit properties", `Quick, test_undeclared_explicit_props);
    ("schema enforcement", `Quick, test_schema_enforcement);
    ("unknown queue", `Quick, test_unknown_queue);
    ("slices group across queues (Fig. 2)", `Quick, test_slice_groups_across_queues);
    ("slice index agrees with scan", `Quick, test_slice_index_and_scan_agree);
    ("slice reset lifetimes (§2.3.2)", `Quick, test_slice_reset_lifetimes);
    ("retention rules (§2.3.3)", `Quick, test_retention_rules);
    ("gc", `Quick, test_gc);
    ("multi-slice retention", `Quick, test_multi_slice_retention);
    ("recovery rebuilds indexes", `Quick, test_mq_recovery_rebuilds_indexes);
    QCheck_alcotest.to_alcotest prop_retention;
  ]

(* qcheck: materialized index and scan agree under random interleavings of
   enqueues, resets and GC (the §4.3 equivalence, stated as a property) *)

type slice_op = Op_enqueue of int | Op_reset of int | Op_process_all | Op_gc

let gen_slice_ops =
  QCheck.Gen.(
    small_list
      (frequency
         [
           (5, map (fun k -> Op_enqueue k) (int_bound 4));
           (2, map (fun k -> Op_reset k) (int_bound 4));
           (1, return Op_process_all);
           (1, return Op_gc);
         ]))

let prop_index_scan_equivalent =
  QCheck.Test.make ~name:"slice index = scan under random op interleavings"
    ~count:80 (QCheck.make gen_slice_ops)
    (fun ops ->
      let qm = fixture () in
      List.iter
        (fun op ->
          match op with
          | Op_enqueue k ->
            ignore (enqueue_ok qm "order" (order_msg (string_of_int k)))
          | Op_reset k ->
            let txn = Store.begin_txn (Qm.store qm) in
            Qm.reset_slice qm txn ~slicing:"orders" ~key:(string_of_int k);
            Store.commit txn
          | Op_process_all ->
            List.iter (fun m -> mark qm m) (Qm.queue_messages qm "order")
          | Op_gc -> ignore (Qm.gc qm))
        ops;
      List.for_all
        (fun k ->
          let key = string_of_int k in
          let rids use_index =
            List.sort compare
              (List.map
                 (fun m -> m.Message.rid)
                 (Qm.slice_messages qm ~use_index ~slicing:"orders" ~key ()))
          in
          rids true = rids false)
        [ 0; 1; 2; 3; 4 ])

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_index_scan_equivalent ]

test/test_baseline.ml: Alcotest Demaq List

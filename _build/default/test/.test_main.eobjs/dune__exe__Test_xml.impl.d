test/test_xml.ml: Alcotest Demaq List Option QCheck QCheck_alcotest Result String

test/test_wsdl.ml: Alcotest Demaq List Option Result String

test/test_xquery_ext.ml: Alcotest Demaq List String

test/test_xquery.ml: Alcotest Demaq Fun List Printf QCheck QCheck_alcotest String

test/test_locks.ml: Alcotest Demaq List

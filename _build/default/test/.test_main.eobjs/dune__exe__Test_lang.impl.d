test/test_lang.ml: Alcotest Demaq List Option Printf String

test/test_procurement.ml: Alcotest Demaq List Option Printf String

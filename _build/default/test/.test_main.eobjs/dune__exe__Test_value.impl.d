test/test_value.ml: Alcotest Demaq Float List Result String

test/test_robustness.ml: Alcotest Array Demaq Filename Fun In_channel List Out_channel Printf QCheck QCheck_alcotest String Sys Unix

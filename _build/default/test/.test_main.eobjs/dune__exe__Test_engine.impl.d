test/test_engine.ml: Alcotest Array Demaq Filename Format List Printf String Sys Unix

test/test_evolution.ml: Alcotest Demaq List String

test/test_btree.ml: Alcotest Demaq List Map Printf QCheck QCheck_alcotest Result String

test/test_mq.ml: Alcotest Array Demaq Filename List Option Printf QCheck QCheck_alcotest Sys Unix

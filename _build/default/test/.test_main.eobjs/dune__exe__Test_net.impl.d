test/test_net.ml: Alcotest Demaq List Option

test/test_prefilter.ml: Alcotest Demaq List Printf String

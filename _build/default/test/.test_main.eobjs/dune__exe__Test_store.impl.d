test/test_store.ml: Alcotest Array Buffer Bytes Demaq Filename List Option Printf QCheck QCheck_alcotest String Sys Unix

test/test_heap_file.ml: Alcotest Bytes Char Demaq Filename List Printf QCheck QCheck_alcotest String Sys Unix

test/test_time.ml: Alcotest Demaq List Printf String

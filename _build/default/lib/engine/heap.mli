(** A binary min-heap over an explicit ordering.

    Backs the message scheduler and the echo-queue timer wheel. Push and
    pop are O(log n); peek is O(1). *)

type 'a t

val create : ('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The minimum element, not removed. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val to_list : 'a t -> 'a list
(** The live elements in internal (heap array) order. *)

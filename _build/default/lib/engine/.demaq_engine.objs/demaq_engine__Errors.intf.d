lib/engine/errors.mli: Demaq_net Demaq_xml

lib/engine/heap.mli:

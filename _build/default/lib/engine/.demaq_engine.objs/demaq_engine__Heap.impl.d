lib/engine/heap.ml: Array

lib/engine/scheduler.ml: Heap List Option

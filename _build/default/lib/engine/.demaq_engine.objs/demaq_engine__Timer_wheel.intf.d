lib/engine/timer_wheel.mli:

lib/engine/server.mli: Clock Demaq_mq Demaq_net Demaq_store Demaq_xml Demaq_xquery Format

lib/engine/clock.mli:

lib/engine/errors.ml: Demaq_net Demaq_xml List

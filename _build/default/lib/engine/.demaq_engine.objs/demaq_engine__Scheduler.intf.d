lib/engine/scheduler.mli:

lib/engine/server.ml: Clock Demaq_lang Demaq_mq Demaq_net Demaq_store Demaq_xml Demaq_xquery Errors Format Hashtbl List Logs Option Printf Queue Scheduler String Timer_wheel

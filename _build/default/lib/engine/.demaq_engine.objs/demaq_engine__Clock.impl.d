lib/engine/clock.ml:

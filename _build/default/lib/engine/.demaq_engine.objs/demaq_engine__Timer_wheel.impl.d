lib/engine/timer_wheel.ml: Heap List Option

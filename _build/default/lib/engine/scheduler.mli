(** The message scheduler (§4.4.2): "maintains a list of all unprocessed
    messages and chooses the next message to be handled, considering both
    their temporal ordering and the priority of the containing queues."

    A binary heap ordered by (queue priority descending, arrival sequence
    ascending): higher-priority messages overtake older lower-priority
    ones; FIFO holds within a priority level. All operations are
    O(log n). *)

type t

val create : unit -> t

val add : t -> priority:int -> int -> unit
(** Schedule a message rid at the given queue priority. *)

val pop : t -> int option
(** The next rid per the scheduling order, removing it. *)

val peek : t -> int option
val length : t -> int
val is_empty : t -> bool

val pending_rids : t -> int list
(** All scheduled rids in heap (not scheduling) order; for diagnostics. *)

(** Error messages (§3.6): "errors are represented by XML messages sent to
    error queues."

    The error schema mirrors Fig. 10 of the paper, which navigates
    [/error/disconnectedTransport] and [/error/initialMessage//orderID]:
    the kind is an empty child element named after it, and the triggering
    message payload is embedded under [<initialMessage>]. *)

type kind =
  | Evaluation_error
      (** XQuery dynamic errors — "application program related" *)
  | Schema_violation  (** message-related: invalid document for a queue *)
  | Unknown_queue
  | Property_error
  | Interface_violation
      (** not a valid input of the gateway's WSDL port (§2.1.2) *)
  | Disconnected_transport  (** network-related (Fig. 10) *)
  | Delivery_timeout
  | Name_resolution_error
  | System_error

val kind_element : kind -> string
(** The element name of the kind marker, e.g. ["disconnectedTransport"]. *)

val to_xml :
  kind:kind ->
  description:string ->
  ?rule:string ->
  ?queue:string ->
  ?initial_message:Demaq_xml.Tree.tree ->
  unit ->
  Demaq_xml.Tree.tree

val of_network_failure : Demaq_net.Network.failure -> kind

(* Error messages (§3.6): "errors are represented by XML messages sent to
   error queues. ... The error message not only contains an error
   specification according to a predefined schema, but may also contain
   (a reference to) the data which caused the error."

   The error schema mirrors Fig. 10 of the paper, which navigates
   [/error/disconnectedTransport] and [/error/initialMessage//orderID]:
   the error kind is an empty child element named after the kind, and the
   triggering message payload is embedded under <initialMessage>. *)

module Tree = Demaq_xml.Tree

type kind =
  | Evaluation_error  (* XQuery dynamic errors (application-program related) *)
  | Schema_violation  (* message-related: invalid document for target queue *)
  | Unknown_queue
  | Property_error
  | Interface_violation
      (* message is not a valid input of the gateway's WSDL port (§2.1.2) *)
  | Disconnected_transport  (* network-related, Fig. 10 *)
  | Delivery_timeout
  | Name_resolution_error
  | System_error

let kind_element = function
  | Evaluation_error -> "evaluationError"
  | Schema_violation -> "schemaViolation"
  | Unknown_queue -> "unknownQueue"
  | Property_error -> "propertyError"
  | Interface_violation -> "interfaceViolation"
  | Disconnected_transport -> "disconnectedTransport"
  | Delivery_timeout -> "deliveryTimeout"
  | Name_resolution_error -> "nameResolutionError"
  | System_error -> "systemError"

let to_xml ~kind ~description ?rule ?queue ?initial_message () =
  let optional name = function
    | Some v -> [ Tree.elem name [ Tree.text v ] ]
    | None -> []
  in
  Tree.elem "error"
    (List.concat
       [
         [ Tree.elem (kind_element kind) [] ];
         [ Tree.elem "description" [ Tree.text description ] ];
         optional "rule" rule;
         optional "queue" queue;
         (match initial_message with
          | Some payload -> [ Tree.elem "initialMessage" [ payload ] ]
          | None -> []);
       ])

let of_network_failure (f : Demaq_net.Network.failure) =
  match f with
  | Demaq_net.Network.Disconnected _ -> Disconnected_transport
  | Demaq_net.Network.Timeout _ -> Delivery_timeout
  | Demaq_net.Network.Name_resolution _ -> Name_resolution_error

(** The engine's virtual clock.

    Demaq models time-based behaviour (echo queues §2.1.3, time-based
    conditions §5) through this injectable tick counter, which keeps tests
    and benchmarks deterministic; a deployment can drive it from
    wall-clock time instead. The clock never goes backwards. *)

type t

val create : ?start:int -> unit -> t
val now : t -> int
val advance : t -> int -> unit
(** Move forward by a number of ticks (negative amounts are ignored). *)

val set : t -> int -> unit
(** Jump forward to an absolute tick; ignored if it is in the past. *)

(* The engine's virtual clock. Demaq models time-based behaviour (echo
   queues, §2.1.3) through this injectable tick counter, which keeps tests
   and benchmarks deterministic; a deployment can drive it from wall-clock
   time instead. *)

type t = { mutable now : int }

let create ?(start = 0) () = { now = start }
let now t = t.now
let advance t ticks = t.now <- t.now + max 0 ticks
let set t tick = if tick > t.now then t.now <- tick

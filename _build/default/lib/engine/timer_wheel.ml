(* Timers backing the echo queues (§2.1.3): a message placed into an echo
   queue is re-enqueued into a target queue once its timeout expires. The
   wheel stores (due-tick, echo-message rid, target queue) and releases the
   due entries as the virtual clock advances. *)

type entry = { due : int; seq : int; rid : int; target : string }

type t = { heap : entry Heap.t; mutable next_seq : int }

let compare_entries a b =
  let c = compare a.due b.due in
  if c <> 0 then c else compare a.seq b.seq

let create () = { heap = Heap.create compare_entries; next_seq = 0 }

let schedule t ~due ~rid ~target =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { due; seq; rid; target }

(* All entries due at or before [now], in firing order. *)
let due_entries t ~now =
  let rec go acc =
    match Heap.peek t.heap with
    | Some e when e.due <= now ->
      ignore (Heap.pop t.heap);
      go ((e.rid, e.target) :: acc)
    | _ -> List.rev acc
  in
  go []

let next_due t = Option.map (fun e -> e.due) (Heap.peek t.heap)
let pending t = Heap.length t.heap

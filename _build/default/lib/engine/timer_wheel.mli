(** Timers backing the echo queues (§2.1.3): a message placed into an echo
    queue reappears in its target queue once its timeout expires.

    Entries are (due tick, echo-message rid, target queue) in a binary
    heap; ties fire in registration order. The engine re-registers pending
    timers from unprocessed echo-queue messages after a restart. *)

type t

val create : unit -> t

val schedule : t -> due:int -> rid:int -> target:string -> unit

val due_entries : t -> now:int -> (int * string) list
(** Remove and return all (rid, target) entries due at or before [now],
    in firing order. *)

val next_due : t -> int option
(** The earliest pending deadline, if any. *)

val pending : t -> int

lib/baseline/context_engine.ml: Demaq_xml Hashtbl String

lib/baseline/context_engine.mli: Demaq_xml

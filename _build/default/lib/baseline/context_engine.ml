(* The comparison system for benchmark B4: a BPEL-style process engine that
   keeps one monolithic runtime context per process instance (§2.1 of the
   paper: "Contexts that include these variable bindings have to be kept
   for each active process instance, which leads to scalability issues if
   the number of processes is large. ... the Oracle BPEL Process Manager
   stores application contexts in a relational database system (dehydration
   store) and reacquires them when processing continues").

   With [dehydrate = true] every delivery serializes/parses the whole
   context document (the dehydration store round trip); with [false] the
   contexts stay live in memory. Demaq's "everything is a message" model is
   the contrast: state queries touch only the messages a rule asks for. *)

module Tree = Demaq_xml.Tree
module Serializer = Demaq_xml.Serializer
module Xml_parser = Demaq_xml.Parser

type stats = {
  deliveries : int;
  instances : int;
  rehydrations : int;
  dehydrated_bytes : int;  (* cumulative serialize+parse volume *)
}

type t = {
  correlate : Tree.tree -> string;
  step : context:Tree.tree -> msg:Tree.tree -> Tree.tree * Tree.tree list;
  initial : Tree.tree;
  dehydrate : bool;
  live : (string, Tree.tree) Hashtbl.t;
  dehydrated : (string, string) Hashtbl.t;
  mutable s_deliveries : int;
  mutable s_rehydrations : int;
  mutable s_bytes : int;
}

let create ?(dehydrate = true) ?(initial = Tree.elem "context" []) ~correlate ~step
    () =
  {
    correlate;
    step;
    initial;
    dehydrate;
    live = Hashtbl.create 256;
    dehydrated = Hashtbl.create 256;
    s_deliveries = 0;
    s_rehydrations = 0;
    s_bytes = 0;
  }

let load t key =
  if t.dehydrate then begin
    match Hashtbl.find_opt t.dehydrated key with
    | Some serialized ->
      t.s_rehydrations <- t.s_rehydrations + 1;
      t.s_bytes <- t.s_bytes + String.length serialized;
      Xml_parser.parse serialized
    | None -> t.initial
  end
  else
    match Hashtbl.find_opt t.live key with
    | Some ctx -> ctx
    | None -> t.initial

let save t key ctx =
  if t.dehydrate then begin
    let serialized = Serializer.to_string ctx in
    t.s_bytes <- t.s_bytes + String.length serialized;
    Hashtbl.replace t.dehydrated key serialized
  end
  else Hashtbl.replace t.live key ctx

let deliver t msg =
  t.s_deliveries <- t.s_deliveries + 1;
  let key = t.correlate msg in
  let ctx = load t key in
  let ctx', outputs = t.step ~context:ctx ~msg in
  save t key ctx';
  outputs

let instance_count t =
  if t.dehydrate then Hashtbl.length t.dehydrated else Hashtbl.length t.live

let stats t =
  {
    deliveries = t.s_deliveries;
    instances = instance_count t;
    rehydrations = t.s_rehydrations;
    dehydrated_bytes = t.s_bytes;
  }

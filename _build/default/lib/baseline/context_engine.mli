(** The comparison system for benchmark B4: a BPEL-style process engine
    keeping one monolithic runtime context per process instance (§2.1 of
    the paper: per-instance variable bindings "have to be kept for each
    active process instance, which leads to scalability issues"; the
    Oracle BPEL Process Manager's dehydration store is the cited
    workaround).

    With [dehydrate = true] every delivery serializes and re-parses the
    whole context document — the dehydration-store round trip; with
    [false] contexts stay live in memory. Demaq's "everything is a
    message" model is the contrast measured in bench B4. *)

type t

val create :
  ?dehydrate:bool ->
  ?initial:Demaq_xml.Tree.tree ->
  correlate:(Demaq_xml.Tree.tree -> string) ->
  step:
    (context:Demaq_xml.Tree.tree ->
     msg:Demaq_xml.Tree.tree ->
     Demaq_xml.Tree.tree * Demaq_xml.Tree.tree list) ->
  unit ->
  t
(** [correlate] maps a message to its process-instance key; [step] folds a
    message into the instance context and returns the new context plus any
    output messages. [dehydrate] defaults to [true]; [initial] is the
    context of a fresh instance (default [<context/>]). *)

val deliver : t -> Demaq_xml.Tree.tree -> Demaq_xml.Tree.tree list
(** Route a message to its instance (rehydrating if necessary), run the
    step, store the new context, return the outputs. *)

val instance_count : t -> int

type stats = {
  deliveries : int;
  instances : int;
  rehydrations : int;  (** dehydration-store loads *)
  dehydrated_bytes : int;  (** cumulative serialize + parse volume *)
}

val stats : t -> stats

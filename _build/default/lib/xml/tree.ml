type attribute = { attr_name : Name.t; attr_value : string }

type tree =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = { name : Name.t; attrs : attribute list; children : tree list }

let elem ?(attrs = []) name children =
  let attrs =
    List.map (fun (k, v) -> { attr_name = Name.of_string k; attr_value = v }) attrs
  in
  Element { name = Name.make name; attrs; children }

let elem_ns ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s
let attr k v = { attr_name = Name.of_string k; attr_value = v }

let element_name = function Element e -> Some e.name | _ -> None

let attribute_value t name =
  match t with
  | Element e ->
    List.find_map
      (fun a -> if Name.local a.attr_name = name then Some a.attr_value else None)
      e.attrs
  | _ -> None

let child_elements = function
  | Element e -> List.filter (function Element _ -> true | _ -> false) e.children
  | _ -> []

let find_child t name =
  match t with
  | Element e ->
    List.find_opt
      (function Element c -> Name.local c.name = name | _ -> false)
      e.children
  | _ -> None

let rec tree_string_value t =
  match t with
  | Text s -> s
  | Element e -> String.concat "" (List.map tree_string_value e.children)
  | Comment _ | Pi _ -> ""

let rec equal_tree a b =
  match a, b with
  | Text x, Text y -> String.equal x y
  | Comment x, Comment y -> String.equal x y
  | Pi x, Pi y -> String.equal x.target y.target && String.equal x.data y.data
  | Element x, Element y ->
    Name.equal x.name y.name
    && List.length x.attrs = List.length y.attrs
    && List.for_all
         (fun a ->
           List.exists
             (fun b ->
               Name.equal a.attr_name b.attr_name
               && String.equal a.attr_value b.attr_value)
             y.attrs)
         x.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal_tree x.children y.children
  | (Text _ | Comment _ | Pi _ | Element _), _ -> false

type document = { id : int; roots : tree list }

let doc_counter = ref 0

let doc_of_forest roots =
  incr doc_counter;
  { id = !doc_counter; roots }

let doc t = doc_of_forest [ t ]
let doc_id d = d.id
let doc_roots d = d.roots

let document_element d =
  List.find_opt (function Element _ -> true | _ -> false) d.roots

(* A node is identified by the reversed path of steps from the document
   node. [Child i] selects the i-th child (or i-th root for the document
   node); [Attr i] selects the i-th attribute of an element. The focused
   subtree is cached so navigation downwards never re-walks the tree. *)
type step = Child of int | Attr of int

type focus =
  | Fdocument
  | Ftree of tree
  | Fattribute of attribute

type node = { ndoc : document; rpath : step list; nfocus : focus }

let focus n = n.nfocus
let node_document n = n.ndoc
let root_node d = { ndoc = d; rpath = []; nfocus = Fdocument }

let child_trees n =
  match n.nfocus with
  | Fdocument -> n.ndoc.roots
  | Ftree (Element e) -> e.children
  | Ftree (Text _ | Comment _ | Pi _) | Fattribute _ -> []

let children n =
  List.mapi
    (fun i t -> { ndoc = n.ndoc; rpath = Child i :: n.rpath; nfocus = Ftree t })
    (child_trees n)

let attributes n =
  match n.nfocus with
  | Ftree (Element e) ->
    List.mapi
      (fun i a -> { ndoc = n.ndoc; rpath = Attr i :: n.rpath; nfocus = Fattribute a })
      e.attrs
  | Fdocument | Ftree (Text _ | Comment _ | Pi _) | Fattribute _ -> []

(* Re-resolve a path from the root; used only by [parent]. *)
let resolve_path d rpath =
  let steps = List.rev rpath in
  let rec go focus = function
    | [] -> focus
    | Child i :: rest ->
      let kids =
        match focus with
        | Fdocument -> d.roots
        | Ftree (Element e) -> e.children
        | Ftree _ | Fattribute _ -> []
      in
      go (Ftree (List.nth kids i)) rest
    | Attr i :: rest ->
      (match focus with
       | Ftree (Element e) -> go (Fattribute (List.nth e.attrs i)) rest
       | Fdocument | Ftree _ | Fattribute _ -> invalid_arg "resolve_path")
  in
  go Fdocument steps

let parent n =
  match n.rpath with
  | [] -> None
  | _ :: up ->
    let nfocus = resolve_path n.ndoc up in
    Some { ndoc = n.ndoc; rpath = up; nfocus }

let rec descendants n =
  List.concat_map (fun c -> c :: descendants c) (children n)

let descendant_or_self n = n :: descendants n

let node_name n =
  match n.nfocus with
  | Ftree (Element e) -> Some e.name
  | Fattribute a -> Some a.attr_name
  | Ftree (Pi p) -> Some (Name.make p.target)
  | Fdocument | Ftree (Text _ | Comment _) -> None

let string_value n =
  match n.nfocus with
  | Fdocument -> String.concat "" (List.map tree_string_value n.ndoc.roots)
  | Ftree t -> tree_string_value t
  | Fattribute a -> a.attr_value

let is_element n = match n.nfocus with Ftree (Element _) -> true | _ -> false
let is_text n = match n.nfocus with Ftree (Text _) -> true | _ -> false

let step_rank = function Attr i -> (0, i) | Child i -> (1, i)

let doc_order a b =
  let c = compare a.ndoc.id b.ndoc.id in
  if c <> 0 then c
  else
    (* Compare forward paths lexicographically; a prefix (ancestor) sorts
       first, and attributes sort before children of the same element. *)
    let rec cmp xs ys =
      match xs, ys with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: xs', y :: ys' ->
        let c = compare (step_rank x) (step_rank y) in
        if c <> 0 then c else cmp xs' ys'
    in
    cmp (List.rev a.rpath) (List.rev b.rpath)

let same_node a b = doc_order a b = 0

let node_tree n =
  match n.nfocus with
  | Ftree t -> Some t
  | Fdocument -> document_element n.ndoc
  | Fattribute _ -> None

let rec pp_tree fmt = function
  | Text s -> Format.pp_print_string fmt s
  | Comment s -> Format.fprintf fmt "<!--%s-->" s
  | Pi { target; data } -> Format.fprintf fmt "<?%s %s?>" target data
  | Element e ->
    Format.fprintf fmt "<%s" (Name.to_string e.name);
    List.iter
      (fun a ->
        Format.fprintf fmt " %s=\"%s\"" (Name.to_string a.attr_name) a.attr_value)
      e.attrs;
    if e.children = [] then Format.fprintf fmt "/>"
    else begin
      Format.fprintf fmt ">";
      List.iter (pp_tree fmt) e.children;
      Format.fprintf fmt "</%s>" (Name.to_string e.name)
    end

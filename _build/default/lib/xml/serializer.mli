(** XML serialization.

    Produces well-formed XML with correct escaping. Names in non-empty
    namespaces are emitted with generated prefixes ([ns1], [ns2], ...) and
    matching [xmlns:*] declarations on the element that first uses them. *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quotes for double-quoted
    attribute values. *)

val to_string : ?decl:bool -> Tree.tree -> string
(** Compact (single-line) serialization. [decl] prepends an XML declaration
    (default [false]). *)

val to_string_pretty : ?indent:int -> Tree.tree -> string
(** Indented serialization for human consumption. Elements with only text
    content stay on one line. [indent] is the per-level indent width
    (default 2). *)

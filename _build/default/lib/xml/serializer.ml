let escape gen s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when gen -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape false
let escape_attr = escape true

(* Serialization-time namespace environment: maps URIs to prefixes. New
   URIs get fresh [nsN] prefixes declared on the element introducing them. *)
type ns_env = { mutable bindings : (string * string) list; mutable next : int }

let prefix_for env buf uri =
  if uri = "" then ""
  else
    match List.assoc_opt uri env.bindings with
    | Some p -> p ^ ":"
    | None ->
      let p = Printf.sprintf "ns%d" env.next in
      env.next <- env.next + 1;
      env.bindings <- (uri, p) :: env.bindings;
      Buffer.add_string buf (Printf.sprintf " xmlns:%s=\"%s\"" p (escape_attr uri));
      p ^ ":"

let write_name env name =
  (* Any new xmlns declaration is returned separately so the caller can
     place it right after the element name. *)
  let decls = Buffer.create 0 in
  let p = prefix_for env decls (Name.uri name) in
  (p ^ Name.local name, Buffer.contents decls)

let rec write env buf t =
  match t with
  | Tree.Text s -> Buffer.add_string buf (escape_text s)
  | Tree.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Tree.Pi { target; data } ->
    Buffer.add_string buf (Printf.sprintf "<?%s %s?>" target data)
  | Tree.Element e ->
    let tag, decls = write_name env e.name in
    Buffer.add_char buf '<';
    Buffer.add_string buf tag;
    Buffer.add_string buf decls;
    List.iter
      (fun a ->
        let aname, adecls = write_name env a.Tree.attr_name in
        Buffer.add_string buf adecls;
        Buffer.add_string buf
          (Printf.sprintf " %s=\"%s\"" aname (escape_attr a.Tree.attr_value)))
      e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (write env buf) e.children;
      Buffer.add_string buf (Printf.sprintf "</%s>" tag)
    end

let to_string ?(decl = false) t =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  write { bindings = []; next = 1 } buf t;
  Buffer.contents buf

let only_text children =
  List.for_all (function Tree.Text _ -> true | _ -> false) children

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let env = { bindings = []; next = 1 } in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let rec go depth t =
    pad depth;
    (match t with
     | Tree.Element e when e.children <> [] && not (only_text e.children) ->
       let tag, decls = write_name env e.name in
       Buffer.add_char buf '<';
       Buffer.add_string buf tag;
       Buffer.add_string buf decls;
       List.iter
         (fun a ->
           let aname, adecls = write_name env a.Tree.attr_name in
           Buffer.add_string buf adecls;
           Buffer.add_string buf
             (Printf.sprintf " %s=\"%s\"" aname (escape_attr a.Tree.attr_value)))
         e.attrs;
       Buffer.add_string buf ">\n";
       List.iter (go (depth + 1)) e.children;
       pad depth;
       Buffer.add_string buf (Printf.sprintf "</%s>" tag)
     | t -> write env buf t);
    Buffer.add_char buf '\n'
  in
  go 0 t;
  (* Drop the final newline for symmetry with [to_string]. *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

(** Immutable XML trees and navigable node handles.

    The {!tree} type is the plain immutable value representation used to
    build and pattern-match XML content. The {!node} type wraps a tree with
    its position inside a {!document}, giving every node a stable identity
    and a total document order — both required by the XQuery data model. *)

type attribute = { attr_name : Name.t; attr_value : string }

type tree =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = { name : Name.t; attrs : attribute list; children : tree list }

(** {1 Construction helpers} *)

val elem : ?attrs:(string * string) list -> string -> tree list -> tree
(** [elem name children] builds an element in no namespace. Attribute names
    are given in James-Clark notation (see {!Name.of_string}). *)

val elem_ns : ?attrs:attribute list -> Name.t -> tree list -> tree
val text : string -> tree
val attr : string -> string -> attribute

(** {1 Tree accessors} *)

val element_name : tree -> Name.t option
val attribute_value : tree -> string -> string option
(** [attribute_value t name] looks up an attribute by local name on an
    element; [None] for non-elements or missing attributes. *)

val child_elements : tree -> tree list
val find_child : tree -> string -> tree option
(** First child element with the given local name. *)

val tree_string_value : tree -> string
(** Concatenation of all descendant text nodes (XPath string value). *)

val equal_tree : tree -> tree -> bool
(** Structural equality: name, attributes (order-insensitive), children
    (order-sensitive). Comments and PIs are compared too. *)

(** {1 Documents and nodes} *)

type document
(** A document wraps a forest of root trees (normally a single element) and
    carries a process-unique identifier used for node identity. *)

type node
(** A node handle: a position inside a document. *)

val doc : tree -> document
(** [doc t] wraps a tree as a fresh single-rooted document. *)

val doc_of_forest : tree list -> document
val doc_id : document -> int
val doc_roots : document -> tree list
val root_node : document -> node
(** The document node itself. *)

val document_element : document -> tree option

type focus =
  | Fdocument
  | Ftree of tree
  | Fattribute of attribute

val focus : node -> focus
val node_document : node -> document

val children : node -> node list
(** Child nodes (elements, text, comments, PIs), in document order.
    Attribute nodes are not children; see {!attributes}. *)

val attributes : node -> node list
val parent : node -> node option
val descendants : node -> node list
(** Descendants in document order, not including the node itself. Attribute
    nodes are never returned by the descendant axis. *)

val descendant_or_self : node -> node list

val node_name : node -> Name.t option
val string_value : node -> string
val is_element : node -> bool
val is_text : node -> bool

val same_node : node -> node -> bool
val doc_order : node -> node -> int
(** Total order: document id, then position; attributes of an element sort
    after the element and before its children. *)

val node_tree : node -> tree option
(** The subtree at the node, if it is an element/text/comment/PI node. For a
    document node, returns its single root element if there is one. *)

val pp_tree : Format.formatter -> tree -> unit

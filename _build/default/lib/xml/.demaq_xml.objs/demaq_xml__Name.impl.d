lib/xml/name.ml: Format Hashtbl Printf String

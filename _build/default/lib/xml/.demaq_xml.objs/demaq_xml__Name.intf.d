lib/xml/name.mli: Format

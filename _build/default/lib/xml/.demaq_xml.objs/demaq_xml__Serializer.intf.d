lib/xml/serializer.mli: Tree

lib/xml/tree.ml: Format List Name String

lib/xml/tree.mli: Format Name

lib/xml/parser.ml: Buffer Char List Name Printf String Tree

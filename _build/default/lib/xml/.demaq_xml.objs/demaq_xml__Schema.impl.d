lib/xml/schema.ml: List Map Name Printf String Tree

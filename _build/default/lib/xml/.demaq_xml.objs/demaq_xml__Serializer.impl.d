lib/xml/serializer.ml: Buffer List Name Printf String Tree

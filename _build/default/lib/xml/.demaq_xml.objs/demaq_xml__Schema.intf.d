lib/xml/schema.mli: Tree

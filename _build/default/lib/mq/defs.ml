(* Declarations produced by the Queue Definition Language (§2 of the
   paper): queues, properties, and slicings. The QDL parser in
   [Demaq_lang] builds these; the queue manager interprets them. *)

module Schema = Demaq_xml.Schema
module Value = Demaq_xquery.Value
module Ast = Demaq_xquery.Ast

(* ---- queues (§2.1) ---- *)

type kind =
  | Basic  (* local message storage *)
  | Incoming_gateway  (* messages received from remote endpoints *)
  | Outgoing_gateway  (* messages to be sent to remote endpoints *)
  | Echo  (* time-based queue: re-enqueues after a timeout (§2.1.3) *)

let kind_to_string = function
  | Basic -> "basic"
  | Incoming_gateway -> "incomingGateway"
  | Outgoing_gateway -> "outgoingGateway"
  | Echo -> "echo"

type mode = Persistent | Transient

let mode_to_string = function Persistent -> "persistent" | Transient -> "transient"

type queue_def = {
  qname : string;
  kind : kind;
  mode : mode;
  priority : int;  (* higher = processed first; default 0 *)
  schema : Schema.t option;  (* structural validation of enqueued messages *)
  interface : string option;  (* WSDL file reference (informational) *)
  port : string option;
  extensions : (string * string) list;  (* e.g. WS-ReliableMessaging -> policy *)
  error_queue : string option;  (* queue-level error queue (§3.6) *)
}

let queue ?(kind = Basic) ?(mode = Persistent) ?(priority = 0) ?schema ?interface
    ?port ?(extensions = []) ?error_queue qname =
  { qname; kind; mode; priority; schema; interface; port; extensions; error_queue }

(* ---- properties (§2.2) ---- *)

type disposition =
  | Free  (* may be set explicitly at enqueue *)
  | Fixed  (* always computed; explicit setting is an error *)
  | Inherited  (* propagates from the triggering message *)

let disposition_to_string = function
  | Free -> "free"
  | Fixed -> "fixed"
  | Inherited -> "inherited"

type property_def = {
  pname : string;
  ptype : Value.atomic_type;
  disposition : disposition;
  per_queue : (string list * Ast.expr) list;
      (* queue groups with the value expression evaluated against the
         message body; a constant expression acts as the default value *)
}

let property_queues p = List.concat_map fst p.per_queue

let property_expr_for p queue =
  List.find_map
    (fun (queues, expr) -> if List.mem queue queues then Some expr else None)
    p.per_queue

(* ---- slicings (§2.3) ---- *)

type slicing_def = { sname : string; slice_property : string }

(* Well-known system property names (§2.2 "System"). *)
module Sysprop = struct
  let rule = "system-rule"  (* name of the rule that created the message *)
  let timestamp = "system-timestamp"  (* creation tick *)
  let sender = "system-sender"  (* sender address, incoming gateways *)
  let connection = "system-connection"  (* connection handle, §2.2 *)
end

lib/mq/queue_manager.ml: Defs Demaq_store Demaq_xml Demaq_xquery Hashtbl List Message Option Printf

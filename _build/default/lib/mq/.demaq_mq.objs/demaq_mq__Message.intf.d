lib/mq/message.mli: Demaq_store Demaq_xml Demaq_xquery Lazy

lib/mq/message.ml: Buffer Demaq_store Demaq_xml Demaq_xquery Lazy List Printf String

lib/mq/queue_manager.mli: Defs Demaq_store Demaq_xml Demaq_xquery Message

lib/mq/defs.ml: Demaq_xml Demaq_xquery List

(* CRC-32 (IEEE 802.3 polynomial), table-driven. Used to detect torn or
   corrupted records in the write-ahead log. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let string ?(init = 0xFFFFFFFF) s =
  let t = Lazy.force table in
  let c = ref init in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(** CRC-32 (IEEE 802.3 polynomial), table-driven.

    Used to detect torn or corrupted records in the write-ahead log.
    [string "123456789"] is [0xCBF43926], the standard check value. *)

val string : ?init:int -> string -> int

(** A minimal growable array (OCaml 5.1 predates [Dynarray]).

    Append-dominated usage: message queues only ever append rids;
    {!filter_in_place} serves transaction undo and tombstone compaction. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity (never observable through the API). *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val filter_in_place : ('a -> bool) -> 'a t -> unit

type 'a node =
  | Leaf of 'a leaf
  | Internal of 'a internal

and 'a leaf = {
  mutable keys : string array;
  mutable vals : 'a list array;  (* parallel to keys *)
  mutable next : 'a leaf option;  (* leaf chaining for range scans *)
}

and 'a internal = {
  mutable seps : string array;  (* n separators *)
  mutable children : 'a node array;  (* n+1 children *)
}

type 'a t = { order : int; mutable root : 'a node; mutable cardinal : int }

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  { order; root = Leaf { keys = [||]; vals = [||]; next = None }; cardinal = 0 }

(* Index of the child to descend into for [key]: the first separator
   greater than [key] determines the child. Keys equal to a separator go
   right (separators are the first key of the right subtree). *)
let child_index seps key =
  let n = Array.length seps in
  let rec go i = if i >= n || String.compare key seps.(i) < 0 then i else go (i + 1) in
  go 0

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let key_position keys key =
  (* binary search: index of first key >= key *)
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Internal i -> find_leaf i.children.(child_index i.seps key) key

let find t key =
  let l = find_leaf t.root key in
  let i = key_position l.keys key in
  if i < Array.length l.keys && l.keys.(i) = key then l.vals.(i) else []

let mem t key = find t key <> []

(* Insert returns an optional (separator, right-sibling) split. *)
let rec insert_node order node key v =
  match node with
  | Leaf l ->
    let i = key_position l.keys key in
    if i < Array.length l.keys && l.keys.(i) = key then begin
      l.vals.(i) <- l.vals.(i) @ [ v ];
      `No_split
    end
    else begin
      l.keys <- array_insert l.keys i key;
      l.vals <- array_insert l.vals i [ v ];
      if Array.length l.keys <= order then `New_key
      else begin
        (* split leaf *)
        let mid = Array.length l.keys / 2 in
        let rkeys = Array.sub l.keys mid (Array.length l.keys - mid) in
        let rvals = Array.sub l.vals mid (Array.length l.vals - mid) in
        let right = { keys = rkeys; vals = rvals; next = l.next } in
        l.keys <- Array.sub l.keys 0 mid;
        l.vals <- Array.sub l.vals 0 mid;
        l.next <- Some right;
        `Split (rkeys.(0), Leaf right)
      end
    end
  | Internal n -> (
    let ci = child_index n.seps key in
    match insert_node order n.children.(ci) key v with
    | `No_split -> `No_split
    | `New_key -> `New_key
    | `Split (sep, right) ->
      n.seps <- array_insert n.seps ci sep;
      n.children <- array_insert n.children (ci + 1) right;
      if Array.length n.seps <= order then `New_key
      else begin
        let mid = Array.length n.seps / 2 in
        let sep_up = n.seps.(mid) in
        let rseps = Array.sub n.seps (mid + 1) (Array.length n.seps - mid - 1) in
        let rchildren =
          Array.sub n.children (mid + 1) (Array.length n.children - mid - 1)
        in
        let right = Internal { seps = rseps; children = rchildren } in
        n.seps <- Array.sub n.seps 0 mid;
        n.children <- Array.sub n.children 0 (mid + 1);
        `Split (sep_up, right)
      end)

let add t key v =
  match insert_node t.order t.root key v with
  | `No_split -> ()
  | `New_key -> t.cardinal <- t.cardinal + 1
  | `Split (sep, right) ->
    t.cardinal <- t.cardinal + 1;
    t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] }

let remove t key p =
  let l = find_leaf t.root key in
  let i = key_position l.keys key in
  if i < Array.length l.keys && l.keys.(i) = key then begin
    let kept = List.filter (fun v -> not (p v)) l.vals.(i) in
    if kept = [] then begin
      l.keys <- array_remove l.keys i;
      l.vals <- array_remove l.vals i;
      t.cardinal <- t.cardinal - 1
      (* Lazy deletion: internal separators may now point at an absent key,
         which is harmless for search correctness. *)
    end
    else l.vals.(i) <- kept
  end

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.children.(0)

let iter t f =
  let rec go l =
    Array.iteri (fun i k -> f k l.vals.(i)) l.keys;
    match l.next with Some next -> go next | None -> ()
  in
  go (leftmost_leaf t.root)

let range t ?lo ?hi () =
  let start =
    match lo with Some k -> find_leaf t.root k | None -> leftmost_leaf t.root
  in
  let acc = ref [] in
  let stop = ref false in
  let rec go l =
    Array.iteri
      (fun i k ->
        if not !stop then begin
          let ge_lo = match lo with Some b -> String.compare k b >= 0 | None -> true in
          let le_hi = match hi with Some b -> String.compare k b <= 0 | None -> true in
          if not le_hi then stop := true
          else if ge_lo then acc := (k, l.vals.(i)) :: !acc
        end)
      l.keys;
    if not !stop then match l.next with Some next -> go next | None -> ()
  in
  go start;
  List.rev !acc

let cardinal t = t.cardinal

let height t =
  let rec go n = function Leaf _ -> n | Internal i -> go (n + 1) i.children.(0) in
  go 1 t.root

let clear t =
  t.root <- Leaf { keys = [||]; vals = [||]; next = None };
  t.cardinal <- 0

let check_invariants t =
  let sorted a =
    let ok = ref true in
    for i = 0 to Array.length a - 2 do
      if String.compare a.(i) a.(i + 1) >= 0 then ok := false
    done;
    !ok
  in
  let rec depth = function
    | Leaf _ -> Ok 1
    | Internal n ->
      if not (sorted n.seps) then Error "separators not sorted"
      else if Array.length n.children <> Array.length n.seps + 1 then
        Error "child count mismatch"
      else
        Array.fold_left
          (fun acc c ->
            match acc, depth c with
            | Error e, _ | _, Error e -> Error e
            | Ok None, Ok d -> Ok (Some d)
            | Ok (Some d), Ok d' ->
              if d = d' then Ok (Some d) else Error "non-uniform leaf depth")
          (Ok None) n.children
        |> Result.map (function Some d -> d + 1 | None -> 1)
  in
  let rec leaves_sorted = function
    | Leaf l -> if sorted l.keys then Ok () else Error "leaf keys not sorted"
    | Internal n ->
      Array.fold_left
        (fun acc c -> match acc with Error _ -> acc | Ok () -> leaves_sorted c)
        (Ok ()) n.children
  in
  match depth t.root with
  | Error e -> Error e
  | Ok _ -> leaves_sorted t.root

lib/store/lock_manager.mli:

lib/store/btree.ml: Array List Result String

lib/store/message_store.ml: Buffer Codec Filename Hashtbl Heap_file List Lock_manager Option String Sys Unix Vec Wal

lib/store/vec.mli:

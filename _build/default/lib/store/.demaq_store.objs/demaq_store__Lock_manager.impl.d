lib/store/lock_manager.ml: Hashtbl List Option Printf

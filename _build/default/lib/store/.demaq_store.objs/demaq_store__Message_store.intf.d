lib/store/message_store.mli: Heap_file Lock_manager Wal

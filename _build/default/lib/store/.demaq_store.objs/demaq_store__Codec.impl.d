lib/store/codec.ml: Buffer Bytes Int64 List String

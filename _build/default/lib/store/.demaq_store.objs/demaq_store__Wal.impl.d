lib/store/wal.ml: Buffer Codec Crc32 Printf String Sys Unix

lib/store/codec.mli: Buffer

lib/store/wal.mli:

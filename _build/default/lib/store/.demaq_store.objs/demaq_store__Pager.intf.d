lib/store/pager.mli: Bytes

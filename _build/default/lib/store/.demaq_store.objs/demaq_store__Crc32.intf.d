lib/store/crc32.mli:

lib/store/heap_file.mli: Pager

lib/store/pager.ml: Array Bytes Fun Hashtbl Printf Unix

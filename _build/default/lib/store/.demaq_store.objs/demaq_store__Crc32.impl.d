lib/store/crc32.ml: Array Char Lazy String

lib/store/vec.ml: Array List

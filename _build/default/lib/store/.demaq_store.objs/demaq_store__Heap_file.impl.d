lib/store/heap_file.ml: Buffer Bytes Char Fun Int32 Int64 List Pager Printf String

lib/store/btree.mli:

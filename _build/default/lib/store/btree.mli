(** An in-memory B+tree with string keys and multi-values.

    Used as the materialized slice index (§4.3 of the paper: "similar to
    the materialized views concept in RDBMSs, it is possible to maintain a
    physical representation of the slices, for example using a B-Tree
    indexed by the slice key"). The tree is rebuilt from the message store
    at recovery (index data is derived), so it needs no persistence.

    Multiple values per key are supported; deletion of the last value for a
    key removes the key lazily (no eager rebalancing — underfull nodes are
    tolerated, as in many production B-trees). *)

type 'a t

val create : ?order:int -> unit -> 'a t
(** [order] is the maximum number of keys per node (default 32). *)

val add : 'a t -> string -> 'a -> unit
val remove : 'a t -> string -> ('a -> bool) -> unit
(** [remove t k p] removes all values under [k] satisfying [p]. *)

val find : 'a t -> string -> 'a list
(** Values under the key, in insertion order; [[]] if absent. *)

val mem : 'a t -> string -> bool

val range : 'a t -> ?lo:string -> ?hi:string -> unit -> (string * 'a list) list
(** Entries with [lo <= key <= hi] (each bound optional), in key order. *)

val iter : 'a t -> (string -> 'a list -> unit) -> unit
val cardinal : 'a t -> int
(** Number of distinct keys. *)

val height : 'a t -> int
val clear : 'a t -> unit

val check_invariants : 'a t -> (unit, string) result
(** For tests: keys sorted within nodes, separator correctness, uniform
    leaf depth. *)

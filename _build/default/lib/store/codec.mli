(** Binary record (de)serialization helpers used by the WAL and snapshots.

    Integers are fixed 8-byte little-endian; strings are length-prefixed;
    lists are count-prefixed. Decoding is bounds-checked and raises
    {!Decode_error} on truncation, never reads out of range. *)

val put_int : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit
val put_bool : Buffer.t -> bool -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

type reader = { src : string; mutable pos : int }

exception Decode_error of string

val reader : string -> reader
val get_int : reader -> int
val get_string : reader -> string
val get_bool : reader -> bool
val get_list : reader -> (reader -> 'a) -> 'a list
val at_end : reader -> bool

(* A minimal growable array (OCaml 5.1 has no Dynarray yet). Append-only
   usage dominates: message queues only ever append rids. *)

type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; size = 0; dummy }

let length v = v.size

let push v x =
  if v.size = Array.length v.data then begin
    let bigger = Array.make (2 * Array.length v.data) v.dummy in
    Array.blit v.data 0 bigger 0 v.size;
    v.data <- bigger
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  v.data.(i)

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  for i = !j to v.size - 1 do
    v.data.(i) <- v.dummy
  done;
  v.size <- !j

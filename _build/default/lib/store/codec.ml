(* Binary record (de)serialization helpers used by the WAL and snapshots.
   Integers are fixed 8-byte little-endian; strings are length-prefixed. *)

let put_int buf i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  Buffer.add_bytes buf b

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_list buf put items =
  put_int buf (List.length items);
  List.iter (put buf) items

type reader = { src : string; mutable pos : int }

exception Decode_error of string

let reader src = { src; pos = 0 }

let get_int r =
  if r.pos + 8 > String.length r.src then raise (Decode_error "truncated int");
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let n = get_int r in
  if n < 0 || r.pos + n > String.length r.src then
    raise (Decode_error "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_bool r =
  if r.pos >= String.length r.src then raise (Decode_error "truncated bool");
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c <> '\000'

let get_list r get =
  let n = get_int r in
  List.init n (fun _ -> get r)

let at_end r = r.pos >= String.length r.src

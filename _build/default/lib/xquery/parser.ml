exception Syntax_error of { pos : int; msg : string }

type state = { src : string; mutable pos : int }

let state_of_string src = { src; pos = 0 }
let state_pos st = st.pos
let set_pos st p = st.pos <- p

let fail st fmt =
  Format.kasprintf (fun msg -> raise (Syntax_error { pos = st.pos; msg })) fmt

let len st = String.length st.src
let at_end st = st.pos >= len st
let cur st = if at_end st then '\000' else st.src.[st.pos]
let char_at st i = if i >= len st then '\000' else st.src.[i]

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_digit c = c >= '0' && c <= '9'

(* Skip whitespace and (possibly nested) XQuery comments. *)
let rec skip_ws st =
  if not (at_end st) then
    if is_space (cur st) then begin
      st.pos <- st.pos + 1;
      skip_ws st
    end
    else if cur st = '(' && char_at st (st.pos + 1) = ':' then begin
      st.pos <- st.pos + 2;
      let depth = ref 1 in
      while !depth > 0 do
        if at_end st then fail st "unterminated comment"
        else if cur st = '(' && char_at st (st.pos + 1) = ':' then begin
          incr depth;
          st.pos <- st.pos + 2
        end
        else if cur st = ':' && char_at st (st.pos + 1) = ')' then begin
          decr depth;
          st.pos <- st.pos + 2
        end
        else st.pos <- st.pos + 1
      done;
      skip_ws st
    end

let at_eof st =
  skip_ws st;
  at_end st

(* ---- tokens ---- *)

type token =
  | Tname of string  (* QName, possibly prefixed; also keywords *)
  | Tstring of string
  | Tint of int
  | Tdec of float
  | Tsym of string
  | Teof

(* Scan one token starting at [st.pos] (after whitespace); returns the token
   and the position just past it, without committing. *)
let scan st =
  skip_ws st;
  let p = st.pos in
  if p >= len st then (Teof, p)
  else
    let c = st.src.[p] in
    if is_name_start c then begin
      let i = ref p in
      while !i < len st && is_name_char st.src.[!i] do incr i done;
      (* QName: allow one ':' followed by an NCName (but not '::'). *)
      let i =
        if !i < len st && st.src.[!i] = ':' && !i + 1 < len st
           && is_name_start st.src.[!i + 1]
           && char_at st (!i + 1) <> ':'
        then begin
          incr i;
          while !i < len st && is_name_char st.src.[!i] do incr i done;
          !i
        end
        else !i
      in
      (Tname (String.sub st.src p (i - p)), i)
    end
    else if is_digit c || (c = '.' && is_digit (char_at st (p + 1))) then begin
      let i = ref p in
      while !i < len st && is_digit st.src.[!i] do incr i done;
      let is_dec = ref false in
      if !i < len st && st.src.[!i] = '.' && is_digit (char_at st (!i + 1)) then begin
        is_dec := true;
        incr i;
        while !i < len st && is_digit st.src.[!i] do incr i done
      end
      else if !i < len st && st.src.[!i] = '.' && not (is_name_char (char_at st (!i + 1)))
              && char_at st (!i + 1) <> '.' then begin
        (* trailing dot as in "1." *)
        is_dec := true;
        incr i
      end;
      (* An exponent marker only counts when digits actually follow;
         otherwise "1e" in "1enqueue" would lex as a malformed number. *)
      (if !i < len st && (st.src.[!i] = 'e' || st.src.[!i] = 'E') then begin
         let j = !i + 1 in
         let j = if j < len st && (st.src.[j] = '+' || st.src.[j] = '-') then j + 1 else j in
         if j < len st && is_digit st.src.[j] then begin
           is_dec := true;
           i := j;
           while !i < len st && is_digit st.src.[!i] do incr i done
         end
       end);
      let text = String.sub st.src p (!i - p) in
      (match
         if !is_dec then Option.map (fun f -> Tdec f) (float_of_string_opt text)
         else Option.map (fun n -> Tint n) (int_of_string_opt text)
       with
       | Some tok -> (tok, !i)
       | None -> fail st "malformed numeric literal: %s" text)
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let buf = Buffer.create 16 in
      let i = ref (p + 1) in
      let rec go () =
        if !i >= len st then fail st "unterminated string literal"
        else if st.src.[!i] = quote then
          if char_at st (!i + 1) = quote then begin
            Buffer.add_char buf quote;
            i := !i + 2;
            go ()
          end
          else incr i
        else if st.src.[!i] = '&' then begin
          let semi =
            match String.index_from_opt st.src !i ';' with
            | Some s when s - !i <= 8 -> s
            | _ -> fail st "bad entity reference in string literal"
          in
          let ent = String.sub st.src (!i + 1) (semi - !i - 1) in
          (match ent with
           | "lt" -> Buffer.add_char buf '<'
           | "gt" -> Buffer.add_char buf '>'
           | "amp" -> Buffer.add_char buf '&'
           | "quot" -> Buffer.add_char buf '"'
           | "apos" -> Buffer.add_char buf '\''
           | _ -> fail st "unknown entity &%s;" ent);
          i := semi + 1;
          go ()
        end
        else begin
          Buffer.add_char buf st.src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      (Tstring (Buffer.contents buf), !i)
    end
    else
      let two = if p + 1 < len st then String.sub st.src p 2 else "" in
      match two with
      | "//" | "!=" | "<=" | ">=" | ":=" | ".." | "::" | "<<" | ">>" ->
        (Tsym two, p + 2)
      | _ -> (
        match c with
        | '(' | ')' | '[' | ']' | '{' | '}' | ',' | '$' | '/' | '@' | '.' | '*'
        | '+' | '-' | '=' | '<' | '>' | '|' | '?' ->
          (Tsym (String.make 1 c), p + 1)
        | c -> fail st "unexpected character %C" c)

let peek st =
  let tok, _ = scan st in
  tok

(* Peek at the token after the current one. *)
let peek2 st =
  let _, p1 = scan st in
  let save = st.pos in
  st.pos <- p1;
  let tok, _ = scan st in
  st.pos <- save;
  tok

let advance st =
  let tok, p = scan st in
  st.pos <- p;
  tok

let expect_sym st s =
  match advance st with
  | Tsym s' when s' = s -> ()
  | tok ->
    fail st "expected %s, found %s" s
      (match tok with
       | Tname n -> n
       | Tsym s -> s
       | Tstring _ -> "string literal"
       | Tint _ | Tdec _ -> "number"
       | Teof -> "end of input")

let expect_name st =
  match advance st with
  | Tname n -> n
  | _ -> fail st "expected a name"

let expect_keyword st kw =
  match advance st with
  | Tname n when n = kw -> ()
  | _ -> fail st "expected keyword '%s'" kw

let accept_sym st s =
  match peek st with
  | Tsym s' when s' = s ->
    ignore (advance st);
    true
  | _ -> false

let accept_keyword st kw =
  match peek st with
  | Tname n when n = kw ->
    ignore (advance st);
    true
  | _ -> false

(* Does a direct element constructor start at the current position?
   True when the next raw character is '<' immediately followed by a name
   start character (tag) — only called at expression-start positions. *)
let at_constructor st =
  skip_ws st;
  cur st = '<' && is_name_start (char_at st (st.pos + 1))

open Ast

(* ---- expression grammar ---- *)

let rec parse_expr st =
  let e = parse_expr_single st in
  if accept_sym st "," then
    let rec rest acc =
      let e = parse_expr_single st in
      if accept_sym st "," then rest (e :: acc) else List.rev (e :: acc)
    in
    Sequence (rest [ e ])
  else e

and parse_expr_single st =
  match peek st with
  | Tname ("for" | "let") when peek2 st = Tsym "$" -> parse_flwor st
  | Tname ("some" | "every") when peek2 st = Tsym "$" -> parse_quantified st
  | Tname "if" when peek2 st = Tsym "(" -> parse_if st
  | Tname "do" when (match peek2 st with
                     | Tname ("enqueue" | "reset") -> true
                     | _ -> false) ->
    parse_update st
  | _ -> parse_or st

and parse_flwor st =
  let rec clauses acc =
    match peek st with
    | Tname "for" when peek2 st = Tsym "$" ->
      ignore (advance st);
      clauses (For (parse_for_bindings st) :: acc)
    | Tname "let" when peek2 st = Tsym "$" ->
      ignore (advance st);
      clauses (Let (parse_bindings st ":=") :: acc)
    | _ -> List.rev acc
  in
  let binds = clauses [] in
  let binds =
    if accept_keyword st "where" then binds @ [ Where (parse_expr_single st) ]
    else binds
  in
  let binds =
    let stable = peek st = Tname "stable" && peek2 st = Tname "order" in
    if stable then ignore (advance st);
    if accept_keyword st "order" then begin
      expect_keyword st "by";
      let rec keys acc =
        let e = parse_expr_single st in
        let dir =
          if accept_keyword st "descending" then `Desc
          else begin
            ignore (accept_keyword st "ascending");
            `Asc
          end
        in
        let empty_policy =
          if accept_keyword st "empty" then
            if accept_keyword st "greatest" then `Empty_greatest
            else begin
              expect_keyword st "least";
              `Empty_least
            end
          else `Empty_least
        in
        if accept_sym st "," then keys ((e, dir, empty_policy) :: acc)
        else List.rev ((e, dir, empty_policy) :: acc)
      in
      binds @ [ Order_by (keys []) ]
    end
    else if stable then fail st "expected 'order by' after 'stable'"
    else binds
  in
  expect_keyword st "return";
  Flwor (binds, parse_expr_single st)

and parse_for_bindings st =
  (* $v (at $p)? in Expr ("," $v (at $p)? in Expr)* *)
  let one () =
    expect_sym st "$";
    let v = expect_name st in
    let pos_var =
      if accept_keyword st "at" then begin
        expect_sym st "$";
        Some (expect_name st)
      end
      else None
    in
    expect_keyword st "in";
    let e = parse_expr_single st in
    (v, pos_var, e)
  in
  let rec go acc =
    let b = one () in
    if peek st = Tsym "," && peek2 st = Tsym "$" then begin
      ignore (advance st);
      go (b :: acc)
    end
    else List.rev (b :: acc)
  in
  go []

and parse_bindings st sep =
  (* $v <sep> Expr ("," $v <sep> Expr)* where sep is "in" or ":=". *)
  let one () =
    expect_sym st "$";
    let v = expect_name st in
    (if sep = ":=" then expect_sym st ":=" else expect_keyword st sep);
    let e = parse_expr_single st in
    (v, e)
  in
  let rec go acc =
    let b = one () in
    if peek st = Tsym "," && peek2 st = Tsym "$" then begin
      ignore (advance st);
      go (b :: acc)
    end
    else List.rev (b :: acc)
  in
  go []

and parse_quantified st =
  let q = match expect_name st with "some" -> `Some | _ -> `Every in
  let binds = parse_bindings st "in" in
  expect_keyword st "satisfies";
  Quantified (q, binds, parse_expr_single st)

and parse_if st =
  expect_keyword st "if";
  expect_sym st "(";
  let cond = parse_expr st in
  expect_sym st ")";
  expect_keyword st "then";
  let t = parse_expr_single st in
  let e = if accept_keyword st "else" then parse_expr_single st else Empty_seq in
  If (cond, t, e)

and parse_update st =
  expect_keyword st "do";
  match expect_name st with
  | "enqueue" ->
    let payload = parse_expr_single st in
    expect_keyword st "into";
    let queue = expect_name st in
    let rec props acc =
      if accept_keyword st "with" then begin
        let name = expect_name st in
        expect_keyword st "value";
        let e = parse_expr_single st in
        props ((name, e) :: acc)
      end
      else List.rev acc
    in
    Enqueue { payload; queue; props = props [] }
  | "reset" ->
    if accept_keyword st "slicing" then begin
      let slicing = expect_name st in
      expect_keyword st "key";
      let key = parse_expr_single st in
      Reset (Some (slicing, key))
    end
    else Reset None
  | other -> fail st "unknown update primitive: do %s" other

and parse_or st =
  let e = parse_and st in
  if accept_keyword st "or" then Binary (Or, e, parse_or st) else e

and parse_and st =
  let e = parse_comparison st in
  if accept_keyword st "and" then Binary (And, e, parse_and st) else e

and parse_comparison st =
  let e = parse_range st in
  let cmp =
    match peek st with
    | Tsym "=" -> Some (Gen_cmp `Eq)
    | Tsym "!=" -> Some (Gen_cmp `Ne)
    | Tsym "<" -> Some (Gen_cmp `Lt)
    | Tsym "<=" -> Some (Gen_cmp `Le)
    | Tsym ">" -> Some (Gen_cmp `Gt)
    | Tsym ">=" -> Some (Gen_cmp `Ge)
    | Tname "eq" -> Some (Val_cmp `Eq)
    | Tname "ne" -> Some (Val_cmp `Ne)
    | Tname "lt" -> Some (Val_cmp `Lt)
    | Tname "le" -> Some (Val_cmp `Le)
    | Tname "gt" -> Some (Val_cmp `Gt)
    | Tname "ge" -> Some (Val_cmp `Ge)
    | Tname "is" -> Some (Node_cmp `Is)
    | Tsym "<<" -> Some (Node_cmp `Precedes)
    | Tsym ">>" -> Some (Node_cmp `Follows)
    | _ -> None
  in
  match cmp with
  | None -> e
  | Some op ->
    ignore (advance st);
    Binary (op, e, parse_range st)

and parse_range st =
  let e = parse_additive st in
  if accept_keyword st "to" then Range (e, parse_additive st) else e

and parse_additive st =
  let rec go e =
    match peek st with
    | Tsym "+" ->
      ignore (advance st);
      go (Binary (Add, e, parse_multiplicative st))
    | Tsym "-" ->
      ignore (advance st);
      go (Binary (Sub, e, parse_multiplicative st))
    | _ -> e
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go e =
    match peek st with
    | Tsym "*" ->
      ignore (advance st);
      go (Binary (Mul, e, parse_union st))
    | Tname "div" ->
      ignore (advance st);
      go (Binary (Div, e, parse_union st))
    | Tname "idiv" ->
      ignore (advance st);
      go (Binary (Idiv, e, parse_union st))
    | Tname "mod" ->
      ignore (advance st);
      go (Binary (Mod, e, parse_union st))
    | _ -> e
  in
  go (parse_union st)

and parse_union st =
  let rec go e =
    if accept_sym st "|" || accept_keyword st "union" then
      go (Binary (Union, e, parse_intersect st))
    else e
  in
  go (parse_intersect st)

and parse_intersect st =
  let rec go e =
    if accept_keyword st "intersect" then go (Binary (Intersect, e, parse_instance st))
    else if accept_keyword st "except" then go (Binary (Except, e, parse_instance st))
    else e
  in
  go (parse_instance st)

and parse_instance st =
  let e = parse_treat st in
  if peek st = Tname "instance" then begin
    ignore (advance st);
    expect_keyword st "of";
    Instance_of (e, parse_sequence_type st)
  end
  else e

and parse_treat st =
  let e = parse_cast_level st in
  if peek st = Tname "treat" then begin
    ignore (advance st);
    expect_keyword st "as";
    Treat_as (e, parse_sequence_type st)
  end
  else e

and parse_sequence_type st =
  let name = expect_name st in
  let kind_test () =
    expect_sym st "(";
    let arg = match peek st with
      | Tname n -> ignore (advance st); Some n
      | Tsym "*" -> ignore (advance st); None
      | _ -> None
    in
    expect_sym st ")";
    arg
  in
  if name = "empty-sequence" then begin
    expect_sym st "(";
    expect_sym st ")";
    St_empty
  end
  else begin
    let item =
      match name with
      | "item" -> ignore (kind_test ()); It_item
      | "node" -> ignore (kind_test ()); It_node
      | "text" -> ignore (kind_test ()); It_text
      | "document-node" -> ignore (kind_test ()); It_document
      | "element" -> It_element (kind_test ())
      | "attribute" -> It_attribute (kind_test ())
      | "xs:untypedAtomic" -> It_untyped
      | "xs:anyAtomicType" -> It_anyatomic
      | tyname -> (
        match Value.atomic_type_of_string tyname with
        | Ok ty -> It_atomic ty
        | Error msg -> fail st "%s" msg)
    in
    let occ =
      if accept_sym st "?" then `Optional
      else if accept_sym st "*" then `Star
      else if accept_sym st "+" then `Plus
      else `One
    in
    St (item, occ)
  end

and parse_cast_level st =
  let e = parse_unary st in
  let kind =
    if peek st = Tname "castable" then Some `Castable
    else if peek st = Tname "cast" then Some `Cast
    else None
  in
  match kind with
  | None -> e
  | Some k ->
    ignore (advance st);
    expect_keyword st "as";
    let tyname = expect_name st in
    ignore (accept_sym st "?");
    (match Value.atomic_type_of_string tyname with
     | Ok ty -> Cast (e, ty, k)
     | Error msg -> fail st "%s" msg)

and parse_unary st =
  if accept_sym st "-" then Neg (parse_unary st)
  else if accept_sym st "+" then parse_unary st
  else parse_path st

and parse_path st =
  (* Leading "/" or "//". *)
  match peek st with
  | Tsym "/" ->
    ignore (advance st);
    if starts_step st then parse_relative st Root else Root
  | Tsym "//" ->
    ignore (advance st);
    let e = Path (Root, Axis_step (Descendant_or_self, Node_kind_test, [])) in
    let step = parse_step st in
    parse_relative_rest st (Path (e, step))
  | _ ->
    let step = parse_step st in
    parse_relative_rest st step

and parse_relative st base =
  let step = parse_step st in
  parse_relative_rest st (Path (base, step))

and parse_relative_rest st e =
  match peek st with
  | Tsym "/" ->
    ignore (advance st);
    parse_relative st e
  | Tsym "//" ->
    ignore (advance st);
    let e = Path (e, Axis_step (Descendant_or_self, Node_kind_test, [])) in
    parse_relative st e
  | _ -> e

and starts_step st =
  if at_constructor st then true
  else
    match peek st with
    | Tname _ | Tstring _ | Tint _ | Tdec _ -> true
    | Tsym ("@" | "." | ".." | "$" | "(" | "*") -> true
    | _ -> false

and parse_step st =
  if at_constructor st then begin
    skip_ws st;
    st.pos <- st.pos + 1 (* consume '<' *);
    let d = parse_direct_element st in
    with_predicates st (Direct_elem d)
  end
  else
    match peek st with
    | Tsym "@" ->
      ignore (advance st);
      let test = parse_node_test st in
      Axis_step (Attribute, test, parse_predicates st)
    | Tsym ".." ->
      ignore (advance st);
      Axis_step (Parent, Node_kind_test, parse_predicates st)
    | Tsym "." ->
      ignore (advance st);
      with_predicates st Context_item
    | Tsym "$" ->
      ignore (advance st);
      let v = expect_name st in
      with_predicates st (Var v)
    | Tsym "(" ->
      ignore (advance st);
      let e = if peek st = Tsym ")" then Empty_seq else parse_expr st in
      expect_sym st ")";
      with_predicates st e
    | Tsym "*" ->
      ignore (advance st);
      Axis_step (Child, Wildcard, parse_predicates st)
    | Tstring s ->
      ignore (advance st);
      with_predicates st (Literal (Value.String s))
    | Tint i ->
      ignore (advance st);
      with_predicates st (Literal (Value.Integer i))
    | Tdec f ->
      ignore (advance st);
      with_predicates st (Literal (Value.Decimal f))
    | Tname ("element" | "attribute" | "text" as ctor)
      when (match peek2 st with
            | Tsym "{" -> true
            | Tname _ when ctor <> "text" -> peek3_is_brace st
            | _ -> false) ->
      parse_computed_constructor st ctor
    | Tname name -> (
      match peek2 st with
      | Tsym "::" -> parse_full_axis_step st
      | Tsym "(" when name = "text" || name = "node" || name = "comment" ->
        ignore (advance st);
        expect_sym st "(";
        expect_sym st ")";
        let test =
          match name with
          | "text" -> Text_test
          | "comment" -> Comment_test
          | _ -> Node_kind_test
        in
        Axis_step (Child, test, parse_predicates st)
      | Tsym "(" ->
        ignore (advance st);
        expect_sym st "(";
        let args =
          if peek st = Tsym ")" then []
          else
            let rec go acc =
              let e = parse_expr_single st in
              if accept_sym st "," then go (e :: acc) else List.rev (e :: acc)
            in
            go []
        in
        expect_sym st ")";
        with_predicates st (Call (name, args))
      | _ ->
        ignore (advance st);
        Axis_step (Child, Name_test (local_of name), parse_predicates st))
    | tok ->
      fail st "unexpected token %s"
        (match tok with
         | Tsym s -> s
         | Teof -> "end of input"
         | _ -> "?")

(* Is the token after the next one a "{"? Used to recognize the
   [element name {content}] computed-constructor form. *)
and peek3_is_brace st =
  let save = st.pos in
  ignore (advance st);
  ignore (advance st);
  let result = peek st = Tsym "{" in
  st.pos <- save;
  result

and parse_computed_constructor st ctor =
  ignore (advance st);
  let name_expr =
    if ctor = "text" then Empty_seq
    else if accept_sym st "{" then begin
      let e = parse_expr st in
      expect_sym st "}";
      e
    end
    else Literal (Value.String (expect_name st))
  in
  expect_sym st "{";
  let content = if peek st = Tsym "}" then Empty_seq else parse_expr st in
  expect_sym st "}";
  let e =
    match ctor with
    | "element" -> Computed_elem (name_expr, content)
    | "attribute" -> Computed_attr (name_expr, content)
    | _ -> Computed_text content
  in
  with_predicates st e

and parse_full_axis_step st =
  let axis_name = expect_name st in
  expect_sym st "::";
  let axis =
    match axis_name with
    | "child" -> Child
    | "descendant" -> Descendant
    | "descendant-or-self" -> Descendant_or_self
    | "self" -> Self
    | "parent" -> Parent
    | "attribute" -> Attribute
    | a -> fail st "unsupported axis: %s" a
  in
  let test = parse_node_test st in
  Axis_step (axis, test, parse_predicates st)

and parse_node_test st =
  match advance st with
  | Tsym "*" -> Wildcard
  | Tname ("text" | "node" | "comment" as k) when peek st = Tsym "(" ->
    expect_sym st "(";
    expect_sym st ")";
    (match k with
     | "text" -> Text_test
     | "comment" -> Comment_test
     | _ -> Node_kind_test)
  | Tname n -> Name_test (local_of n)
  | _ -> fail st "expected a node test"

and local_of qname =
  match String.index_opt qname ':' with
  | Some i -> String.sub qname (i + 1) (String.length qname - i - 1)
  | None -> qname

and parse_predicates st =
  let rec go acc =
    if accept_sym st "[" then begin
      let e = parse_expr st in
      expect_sym st "]";
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

and with_predicates st e =
  match parse_predicates st with [] -> e | preds -> Filter (e, preds)

(* ---- direct element constructors (raw-character parsing) ----
   Called with [st.pos] just past the opening '<'. *)

and parse_direct_element st =
  let tag = read_tag_name st in
  let rec attrs acc =
    skip_raw_space st;
    if cur st = '/' || cur st = '>' then List.rev acc
    else begin
      let aname = read_tag_name st in
      skip_raw_space st;
      if cur st <> '=' then fail st "expected '=' in attribute";
      st.pos <- st.pos + 1;
      skip_raw_space st;
      let pieces = read_attr_pieces st in
      attrs ((aname, pieces) :: acc)
    end
  in
  let dattrs = attrs [] in
  if cur st = '/' then begin
    st.pos <- st.pos + 1;
    if cur st <> '>' then fail st "expected '>' after '/'";
    st.pos <- st.pos + 1;
    { tag; dattrs; dcontent = [] }
  end
  else begin
    if cur st <> '>' then fail st "expected '>' in start tag";
    st.pos <- st.pos + 1;
    let dcontent = read_content st in
    (* read_content stops after consuming "</" *)
    let close = read_tag_name st in
    if close <> tag then fail st "mismatched end tag </%s> (expected </%s>)" close tag;
    skip_raw_space st;
    if cur st <> '>' then fail st "expected '>' in end tag";
    st.pos <- st.pos + 1;
    { tag; dattrs; dcontent = strip_boundary_space dcontent }
  end

and skip_raw_space st =
  while (not (at_end st)) && is_space (cur st) do st.pos <- st.pos + 1 done

and read_tag_name st =
  if not (is_name_start (cur st)) then fail st "expected a tag name";
  let p = st.pos in
  let i = ref p in
  while
    !i < len st && (is_name_char st.src.[!i] || st.src.[!i] = ':')
  do incr i done;
  st.pos <- !i;
  String.sub st.src p (!i - p)

and read_entity_char st =
  (* at '&' *)
  let semi =
    match String.index_from_opt st.src st.pos ';' with
    | Some s when s - st.pos <= 8 -> s
    | _ -> fail st "bad entity reference"
  in
  let ent = String.sub st.src (st.pos + 1) (semi - st.pos - 1) in
  st.pos <- semi + 1;
  match ent with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length ent > 1 && ent.[0] = '#' then begin
      let code =
        try
          if ent.[1] = 'x' then
            int_of_string ("0x" ^ String.sub ent 2 (String.length ent - 2))
          else int_of_string (String.sub ent 1 (String.length ent - 1))
        with _ -> fail st "bad character reference &%s;" ent
      in
      if code < 128 then String.make 1 (Char.chr code)
      else fail st "non-ASCII character reference &%s; not supported here" ent
    end
    else fail st "unknown entity &%s;" ent

and read_attr_pieces st =
  let quote = cur st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  st.pos <- st.pos + 1;
  let buf = Buffer.create 16 in
  let pieces = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := A_text (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    if at_end st then fail st "unterminated attribute value"
    else if cur st = quote then st.pos <- st.pos + 1
    else if cur st = '{' && char_at st (st.pos + 1) = '{' then begin
      Buffer.add_char buf '{';
      st.pos <- st.pos + 2;
      go ()
    end
    else if cur st = '}' && char_at st (st.pos + 1) = '}' then begin
      Buffer.add_char buf '}';
      st.pos <- st.pos + 2;
      go ()
    end
    else if cur st = '{' then begin
      flush ();
      st.pos <- st.pos + 1;
      let e = parse_expr st in
      expect_sym st "}";
      pieces := A_expr e :: !pieces;
      go ()
    end
    else if cur st = '&' then begin
      Buffer.add_string buf (read_entity_char st);
      go ()
    end
    else begin
      Buffer.add_char buf (cur st);
      st.pos <- st.pos + 1;
      go ()
    end
  in
  go ();
  flush ();
  List.rev !pieces

and read_content st =
  let buf = Buffer.create 32 in
  let pieces = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := C_text (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    if at_end st then fail st "unterminated element constructor"
    else if cur st = '<' && char_at st (st.pos + 1) = '/' then begin
      flush ();
      st.pos <- st.pos + 2 (* consume "</" for the caller *)
    end
    else if cur st = '<' && char_at st (st.pos + 1) = '!' then begin
      (* CDATA or comment *)
      if st.pos + 8 < len st && String.sub st.src st.pos 9 = "<![CDATA[" then begin
        st.pos <- st.pos + 9;
        let stop =
          let rec find i =
            if i + 2 >= len st then fail st "unterminated CDATA"
            else if String.sub st.src i 3 = "]]>" then i
            else find (i + 1)
          in
          find st.pos
        in
        Buffer.add_string buf (String.sub st.src st.pos (stop - st.pos));
        st.pos <- stop + 3;
        go ()
      end
      else if st.pos + 3 < len st && String.sub st.src st.pos 4 = "<!--" then begin
        st.pos <- st.pos + 4;
        let stop =
          let rec find i =
            if i + 2 >= len st then fail st "unterminated comment"
            else if String.sub st.src i 3 = "-->" then i
            else find (i + 1)
          in
          find st.pos
        in
        st.pos <- stop + 3;
        go ()
      end
      else fail st "unsupported markup in constructor"
    end
    else if cur st = '<' then begin
      flush ();
      st.pos <- st.pos + 1;
      let d = parse_direct_element st in
      pieces := C_expr (Direct_elem d) :: !pieces;
      go ()
    end
    else if cur st = '{' && char_at st (st.pos + 1) = '{' then begin
      Buffer.add_char buf '{';
      st.pos <- st.pos + 2;
      go ()
    end
    else if cur st = '}' && char_at st (st.pos + 1) = '}' then begin
      Buffer.add_char buf '}';
      st.pos <- st.pos + 2;
      go ()
    end
    else if cur st = '{' then begin
      flush ();
      st.pos <- st.pos + 1;
      let e = parse_expr st in
      expect_sym st "}";
      pieces := C_expr e :: !pieces;
      go ()
    end
    else if cur st = '&' then begin
      Buffer.add_string buf (read_entity_char st);
      go ()
    end
    else begin
      Buffer.add_char buf (cur st);
      st.pos <- st.pos + 1;
      go ()
    end
  in
  go ();
  List.rev !pieces

(* XQuery boundary-space policy "strip": whitespace-only text between
   markup is dropped. *)
and strip_boundary_space pieces =
  List.filter
    (function
      | C_text s -> String.exists (fun c -> not (is_space c)) s
      | C_expr _ -> true)
    pieces

(* ---- entry points ---- *)

let parse src =
  let st = state_of_string src in
  let e = parse_expr st in
  skip_ws st;
  if not (at_end st) then fail st "trailing input after expression";
  e

let parse_result src =
  match parse src with
  | e -> Ok e
  | exception Syntax_error { pos; msg } ->
    Error (Printf.sprintf "syntax error at offset %d: %s" pos msg)

(* ---- token-level helpers for host languages (QDL) ---- *)

let peek_name st = match peek st with Tname n -> Some n | _ -> None

let read_name st =
  match advance st with
  | Tname n -> n
  | _ -> fail st "expected a name"

let accept_name = accept_keyword
let accept_punct = accept_sym

let read_int st =
  match advance st with
  | Tint i -> i
  | _ -> fail st "expected an integer"

let read_string_literal st =
  match advance st with
  | Tstring s -> s
  | _ -> fail st "expected a string literal"

let read_braced_raw st =
  skip_ws st;
  if cur st <> '{' then fail st "expected '{'";
  st.pos <- st.pos + 1;
  let start = st.pos in
  let depth = ref 1 in
  while !depth > 0 do
    if at_end st then fail st "unterminated '{' block";
    (match cur st with
     | '{' -> incr depth
     | '}' -> decr depth
     | _ -> ());
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - 1 - start)

let error_position src pos =
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun i c ->
      if i < pos then
        if c = '\n' then begin
          incr line;
          col := 1
        end
        else incr col)
    src;
  Printf.sprintf "line %d, column %d" !line !col

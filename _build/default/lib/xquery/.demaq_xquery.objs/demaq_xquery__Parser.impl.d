lib/xquery/parser.ml: Ast Buffer Char Format List Option Printf String Value

lib/xquery/pp.ml: Ast Format List Printf String Value

lib/xquery/eval.mli: Ast Context Demaq_xml Update Value

lib/xquery/value.mli: Demaq_xml Format

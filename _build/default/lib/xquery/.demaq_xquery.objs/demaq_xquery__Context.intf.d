lib/xquery/context.mli: Demaq_xml Format Map String Update Value

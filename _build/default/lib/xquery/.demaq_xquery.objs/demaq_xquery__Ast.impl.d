lib/xquery/ast.ml: List Value

lib/xquery/functions.ml: Buffer Context Demaq_xml Float List Logs String Value

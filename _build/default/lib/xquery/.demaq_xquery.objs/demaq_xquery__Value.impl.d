lib/xquery/value.ml: Bool Demaq_xml Float Format Int List Printf String

lib/xquery/update.ml: Demaq_xml Format List Value

lib/xquery/eval.ml: Ast Buffer Context Demaq_xml Float Functions List Parser Pp Result String Update Value

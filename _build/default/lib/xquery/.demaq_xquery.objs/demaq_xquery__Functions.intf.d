lib/xquery/functions.mli: Context Value

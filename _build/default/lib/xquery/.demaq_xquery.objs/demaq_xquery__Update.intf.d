lib/xquery/update.mli: Demaq_xml Format Value

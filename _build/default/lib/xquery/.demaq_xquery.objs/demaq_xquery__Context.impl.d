lib/xquery/context.ml: Format List Map String Update Value

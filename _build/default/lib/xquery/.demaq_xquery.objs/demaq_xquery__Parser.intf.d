lib/xquery/parser.mli: Ast

lib/xquery/pp.mli: Ast Format

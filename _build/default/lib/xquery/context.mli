(** Dynamic evaluation context for QML expressions.

    The {!host} record is how the engine exposes the [qs:] function
    library (§3.4/§3.5) without a dependency from the XQuery library on
    the queue subsystem: the engine installs closures over its store when
    it evaluates a rule. *)

exception Eval_error of string
(** All dynamic errors surface as this exception; the engine converts them
    into error messages per §3.6. *)

val eval_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Eval_error} with a formatted message. *)

type host = {
  h_queue : string option -> Value.t;
      (** [qs:queue()] / [qs:queue("name")]: the document nodes of all
          messages in the queue *)
  h_message : unit -> Value.t;
      (** [qs:message()]: the triggering message's document node *)
  h_property : string -> Value.t;  (** [qs:property("name")] *)
  h_slice : unit -> Value.t;  (** [qs:slice()], slicing rules only *)
  h_slicekey : unit -> Value.t;  (** [qs:slicekey()], slicing rules only *)
  h_collection : string -> Value.t;
      (** [fn:collection("name")]: master data (§3.5.2) *)
  h_now : unit -> int;  (** virtual-clock tick for [fn:current-dateTime] *)
}

val null_host : host
(** Every hook raises {!Eval_error}; [h_now] returns 0. *)

type env = {
  item : Value.item option;  (** the context item, if any *)
  pos : int;  (** [fn:position()] *)
  size : int;  (** [fn:last()] *)
  vars : Value.t Map.Make(String).t;
  host : host;
  updates : Update.t list ref;  (** pending update accumulator *)
}

val make : ?host:host -> ?item:Value.item -> unit -> env

val with_item : env -> Value.item -> int -> int -> env
(** Focus the context on one item with its position and size. *)

val bind : env -> string -> Value.t -> env
val lookup : env -> string -> Value.t

val context_item : env -> Value.item
(** @raise Eval_error when the context item is undefined. *)

val context_node : env -> Demaq_xml.Tree.node
(** @raise Eval_error when the context item is not a node. *)

val emit : env -> Update.t -> unit
val pending : env -> Update.t list
(** Updates emitted so far, in emission order. *)

(** The XQuery data model subset used by Demaq rules.

    A value is a flat sequence of items; an item is either an XML node (with
    identity and document order, from {!Demaq_xml.Tree}) or an atomic value.
    Timestamps are plain integers (virtual-clock ticks of the engine), which
    keeps the model small while covering every expression in the paper. *)

type atomic =
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | String of string
  | Untyped of string
      (** Untyped atomic data produced by atomizing nodes; coerced per the
          XQuery general-comparison rules. *)

type item = Node of Demaq_xml.Tree.node | Atom of atomic

type t = item list

(** {1 Atomic types, as written in QDL ([as xs:boolean] etc.)} *)

type atomic_type = T_string | T_integer | T_decimal | T_boolean

val atomic_type_of_string : string -> (atomic_type, string) result
(** Accepts ["xs:string"], ["xs:integer"], ["xs:decimal"], ["xs:double"],
    ["xs:boolean"] (and the same without the [xs:] prefix). *)

val atomic_type_name : atomic_type -> string

val cast : atomic_type -> atomic -> (atomic, string) result

(** {1 Conversions} *)

val string_of_atomic : atomic -> string
val atomic_of_bool : bool -> atomic

val number_of_atomic : atomic -> float
(** XPath [number()]: booleans map to 0/1, non-numeric strings to [nan]. *)

val atomize_item : item -> atomic
(** Nodes atomize to their untyped string value. *)

val atomize : t -> atomic list
val string_value : t -> string
(** String value of the first item; [""] for the empty sequence. *)

(** {1 XQuery semantics helpers} *)

exception Type_error of string

val ebv : t -> bool
(** Effective boolean value. @raise Type_error on sequences that have no
    EBV (e.g. a multi-item atomic sequence). *)

val compare_atomic : atomic -> atomic -> int
(** Total order used by value comparisons, [distinct-values], [order by]:
    numeric if both sides are numeric (or untyped-castable), else string. *)

val general_compare :
  [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] -> t -> t -> bool
(** Existentially quantified general comparison ([=], [!=], ...), with
    untyped coercion to the other operand's type. *)

val value_compare :
  [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] -> t -> t -> t
(** Value comparison ([eq], [lt], ...): empty if either side is empty.
    @raise Type_error if either side has more than one item. *)

val arith :
  [ `Add | `Sub | `Mul | `Div | `Idiv | `Mod ] -> t -> t -> t
(** Arithmetic with numeric promotion; empty if either operand is empty.
    @raise Type_error on non-numeric operands or division by zero in
    [idiv]/[mod]. *)

val doc_order_dedup : t -> t
(** Sort nodes into document order and remove duplicate nodes. If the value
    contains any atomic item it is returned unchanged (mixed path results
    are a type error handled by the caller). *)

val all_nodes : t -> bool

val equal : t -> t -> bool
(** Deep equality used by tests: node items compare by structural XML
    equality, atomics by type and value. *)

val pp : Format.formatter -> t -> unit
val to_display_string : t -> string

(** Pending update primitives (XQuery Update Facility style, extended with
    the Demaq queue primitives, §3.2/§3.4).

    Rule evaluation produces a list of these; nothing is applied until the
    whole rule set has been evaluated, giving the snapshot semantics of
    §3.1 ("the separation of rule evaluation from action execution"). *)

type t =
  | Enqueue of {
      payload : Demaq_xml.Tree.tree;  (** copied message body *)
      queue : string;  (** target queue name *)
      props : (string * Value.atomic) list;
          (** explicit properties from [with ... value ...] clauses *)
    }
  | Reset of {
      slicing : string option;
          (** [None]: the slice of the current rule's slicing context *)
      key : Value.atomic option;
    }

val pp : Format.formatter -> t -> unit

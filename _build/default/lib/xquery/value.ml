module Tree = Demaq_xml.Tree

type atomic =
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | String of string
  | Untyped of string

type item = Node of Tree.node | Atom of atomic

type t = item list

type atomic_type = T_string | T_integer | T_decimal | T_boolean

let atomic_type_of_string s =
  let s =
    if String.length s > 3 && String.sub s 0 3 = "xs:" then
      String.sub s 3 (String.length s - 3)
    else s
  in
  match s with
  | "string" -> Ok T_string
  | "integer" | "int" | "long" -> Ok T_integer
  | "decimal" | "double" | "float" -> Ok T_decimal
  | "boolean" -> Ok T_boolean
  | other -> Error ("unsupported atomic type: xs:" ^ other)

let atomic_type_name = function
  | T_string -> "xs:string"
  | T_integer -> "xs:integer"
  | T_decimal -> "xs:decimal"
  | T_boolean -> "xs:boolean"

let string_of_atomic = function
  | Boolean b -> if b then "true" else "false"
  | Integer i -> string_of_int i
  | Decimal f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else Printf.sprintf "%.12g" f
  | String s | Untyped s -> s

let atomic_of_bool b = Boolean b

let number_of_atomic = function
  | Boolean b -> if b then 1.0 else 0.0
  | Integer i -> float_of_int i
  | Decimal f -> f
  | String s | Untyped s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> Float.nan)

let cast ty a =
  let s = string_of_atomic a in
  match ty with
  | T_string -> Ok (String s)
  | T_integer -> (
    match a with
    | Integer _ -> Ok a
    | Decimal f -> Ok (Integer (int_of_float f))
    | Boolean b -> Ok (Integer (if b then 1 else 0))
    | String _ | Untyped _ -> (
      match int_of_string_opt (String.trim s) with
      | Some i -> Ok (Integer i)
      | None -> Error (Printf.sprintf "cannot cast %S to xs:integer" s)))
  | T_decimal -> (
    match a with
    | Decimal _ -> Ok a
    | Integer i -> Ok (Decimal (float_of_int i))
    | Boolean b -> Ok (Decimal (if b then 1.0 else 0.0))
    | String _ | Untyped _ -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Ok (Decimal f)
      | None -> Error (Printf.sprintf "cannot cast %S to xs:decimal" s)))
  | T_boolean -> (
    match a with
    | Boolean _ -> Ok a
    | Integer i -> Ok (Boolean (i <> 0))
    | Decimal f -> Ok (Boolean (f <> 0.0 && not (Float.is_nan f)))
    | String _ | Untyped _ -> (
      match String.trim s with
      | "true" | "1" -> Ok (Boolean true)
      | "false" | "0" -> Ok (Boolean false)
      | other -> Error (Printf.sprintf "cannot cast %S to xs:boolean" other)))

let atomize_item = function
  | Atom a -> a
  | Node n -> Untyped (Tree.string_value n)

let atomize v = List.map atomize_item v

let string_value = function
  | [] -> ""
  | item :: _ -> string_of_atomic (atomize_item item)

exception Type_error of string

let ebv = function
  | [] -> false
  | [ Atom (Boolean b) ] -> b
  | [ Atom (String s) ] | [ Atom (Untyped s) ] -> String.length s > 0
  | [ Atom (Integer i) ] -> i <> 0
  | [ Atom (Decimal f) ] -> f <> 0.0 && not (Float.is_nan f)
  | Node _ :: _ -> true
  | _ -> raise (Type_error "effective boolean value of a multi-item sequence")

let is_numeric = function
  | Integer _ | Decimal _ -> true
  | Boolean _ | String _ | Untyped _ -> false

let compare_atomic a b =
  match a, b with
  | Boolean x, Boolean y -> Bool.compare x y
  | Integer x, Integer y -> Int.compare x y
  | (Integer _ | Decimal _), (Integer _ | Decimal _) ->
    Float.compare (number_of_atomic a) (number_of_atomic b)
  | (Untyped _ | String _), x when is_numeric x ->
    Float.compare (number_of_atomic a) (number_of_atomic b)
  | x, (Untyped _ | String _) when is_numeric x ->
    Float.compare (number_of_atomic a) (number_of_atomic b)
  | _ -> String.compare (string_of_atomic a) (string_of_atomic b)

let apply_op op c =
  match op with
  | `Eq -> c = 0
  | `Ne -> c <> 0
  | `Lt -> c < 0
  | `Le -> c <= 0
  | `Gt -> c > 0
  | `Ge -> c >= 0

let general_compare op l r =
  let la = atomize l and ra = atomize r in
  List.exists
    (fun a -> List.exists (fun b -> apply_op op (compare_atomic a b)) ra)
    la

let value_compare op l r =
  match atomize l, atomize r with
  | [], _ | _, [] -> []
  | [ a ], [ b ] -> [ Atom (Boolean (apply_op op (compare_atomic a b))) ]
  | _ -> raise (Type_error "value comparison over multi-item sequence")

let arith op l r =
  match atomize l, atomize r with
  | [], _ | _, [] -> []
  | [ a ], [ b ] -> (
    let fa = number_of_atomic a and fb = number_of_atomic b in
    if Float.is_nan fa || Float.is_nan fb then
      raise (Type_error "arithmetic on non-numeric operand");
    let both_int =
      match a, b with
      | (Integer _ | Untyped _ | String _), (Integer _ | Untyped _ | String _) ->
        Float.is_integer fa && Float.is_integer fb
      | _ -> false
    in
    match op with
    | `Add ->
      if both_int then [ Atom (Integer (int_of_float fa + int_of_float fb)) ]
      else [ Atom (Decimal (fa +. fb)) ]
    | `Sub ->
      if both_int then [ Atom (Integer (int_of_float fa - int_of_float fb)) ]
      else [ Atom (Decimal (fa -. fb)) ]
    | `Mul ->
      if both_int then [ Atom (Integer (int_of_float fa * int_of_float fb)) ]
      else [ Atom (Decimal (fa *. fb)) ]
    | `Div -> [ Atom (Decimal (fa /. fb)) ]
    | `Idiv ->
      if fb = 0.0 then raise (Type_error "integer division by zero")
      else [ Atom (Integer (int_of_float (Float.trunc (fa /. fb)))) ]
    | `Mod ->
      if fb = 0.0 then raise (Type_error "modulo by zero")
      else if both_int then
        [ Atom (Integer (int_of_float fa mod int_of_float fb)) ]
      else [ Atom (Decimal (Float.rem fa fb)) ])
  | _ -> raise (Type_error "arithmetic over multi-item sequence")

let all_nodes v = List.for_all (function Node _ -> true | Atom _ -> false) v

let doc_order_dedup v =
  if not (all_nodes v) then v
  else
    let nodes =
      List.filter_map (function Node n -> Some n | Atom _ -> None) v
    in
    let sorted = List.stable_sort Tree.doc_order nodes in
    let rec dedup = function
      | a :: (b :: _ as rest) ->
        if Tree.same_node a b then dedup rest else a :: dedup rest
      | l -> l
    in
    List.map (fun n -> Node n) (dedup sorted)

let equal_item a b =
  match a, b with
  | Atom x, Atom y -> x = y
  | Node x, Node y -> (
    match Tree.node_tree x, Tree.node_tree y with
    | Some tx, Some ty -> Tree.equal_tree tx ty
    | None, None -> Tree.string_value x = Tree.string_value y
    | _ -> false)
  | (Atom _ | Node _), _ -> false

let equal a b =
  List.length a = List.length b && List.for_all2 equal_item a b

let pp_item fmt = function
  | Atom a -> Format.pp_print_string fmt (string_of_atomic a)
  | Node n -> (
    match Tree.node_tree n with
    | Some t -> Tree.pp_tree fmt t
    | None -> Format.pp_print_string fmt (Tree.string_value n))

let pp fmt v =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_item)
    v

let to_display_string v = Format.asprintf "%a" pp v

(** Parser for the QML expression language: an XQuery subset (paths with
    predicates, FLWOR, quantified and conditional expressions, direct
    element constructors, the operator grammar) extended with the Demaq
    update primitives [do enqueue ... into q with p value e] and
    [do reset [slicing s key e]].

    Lexical notes, following the XQuery 1.0 rules that matter in practice:
    names may contain hyphens ([order-id] is one name; write [a - b] with
    spaces for subtraction); keywords are contextual ([if] is only special
    when followed by ["("]); comments are [(: ... :)] and nest. *)

exception Syntax_error of { pos : int; msg : string }

val parse : string -> Ast.expr
(** Parse a complete expression. @raise Syntax_error on malformed input. *)

val parse_result : string -> (Ast.expr, string) result

(** {1 Incremental interface}

    Used by the QDL/QML front-end, which embeds expressions inside its own
    statement syntax. *)

type state

val state_of_string : string -> state
val state_pos : state -> int
val set_pos : state -> int -> unit
val parse_expr_single : state -> Ast.expr
(** Parse one [ExprSingle] (no top-level comma) and stop. *)

val parse_expr : state -> Ast.expr
(** Parse a full (comma-separated) expression and stop. *)

val at_eof : state -> bool
val skip_ws : state -> unit

(** Token-level helpers for host languages (QDL) that embed expressions. *)

val peek_name : state -> string option
(** The next token if it is a name, without consuming it. *)

val read_name : state -> string
(** Consume a name token. @raise Syntax_error otherwise. *)

val accept_name : state -> string -> bool
(** Consume the given keyword if it is next; report whether it was. *)

val accept_punct : state -> string -> bool
(** Consume the given punctuation token (e.g. [","]) if it is next. *)

val read_int : state -> int
val read_string_literal : state -> string
val read_braced_raw : state -> string
(** Consume a brace-delimited raw block ["{ ... }"] (nesting respected) and
    return its contents verbatim; used for inline schema definitions. *)

val error_position : string -> int -> string
(** [error_position src pos] renders a human-readable line/column. *)

(* The built-in function library: the fn: functions used by Demaq rules
   plus the qs: queue access functions (dispatched to the host hooks).

   Deviations from XQuery 1.0 F&O, documented here once:
   - [fn:current-dateTime] returns the engine's virtual-clock tick as an
     integer rather than an xs:dateTime.
   - [fn:tokenize] splits on a literal separator string, not a regex. *)

module Tree = Demaq_xml.Tree
open Value
open Context

let err = eval_error

let strip_prefix name =
  match String.index_opt name ':' with
  | Some i -> (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
  | None -> ("fn", name)

let one_string args_name v =
  match atomize v with
  | [] -> ""
  | [ a ] -> string_of_atomic a
  | _ -> err "%s: expected at most one item" args_name

let one_number name v =
  match atomize v with
  | [ a ] -> number_of_atomic a
  | _ -> err "%s: expected exactly one item" name

let opt_node name v =
  match v with
  | [] -> None
  | [ Node n ] -> Some n
  | _ -> err "%s: expected a single node" name

let bool_value b = [ Atom (Boolean b) ]
let str_value s = [ Atom (String s) ]
let int_value i = [ Atom (Integer i) ]

let numeric_result f = if Float.is_integer f then Integer (int_of_float f) else Decimal f

let ctx_or_arg env name args =
  match args with
  | [] -> [ context_item env ]
  | [ v ] -> v
  | _ -> err "%s: too many arguments" name

(* substring with XPath 1-based, rounding semantics *)
let substring s start len_opt =
  let n = String.length s in
  let start = Float.round start in
  let finish =
    match len_opt with
    | None -> float_of_int (n + 1)
    | Some l -> start +. Float.round l
  in
  let lo = max 1 (int_of_float start) in
  let hi = min (n + 1) (int_of_float finish) in
  if hi <= lo then "" else String.sub s (lo - 1) (hi - lo)

let normalize_space s =
  let words =
    String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
  in
  String.concat " " (List.filter (fun w -> w <> "") words)

let split_on_string ~sep s =
  if sep = "" then err "fn:tokenize: empty separator"
  else begin
    let parts = ref [] in
    let buf = Buffer.create 16 in
    let slen = String.length sep in
    let i = ref 0 in
    while !i < String.length s do
      if !i + slen <= String.length s && String.sub s !i slen = sep then begin
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf;
        i := !i + slen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    parts := Buffer.contents buf :: !parts;
    List.rev !parts
  end

let aggregate name fold init args =
  match args with
  | [ v ] -> (
    match atomize v with
    | [] -> []
    | atoms ->
      let nums = List.map number_of_atomic atoms in
      if List.exists Float.is_nan nums then err "%s: non-numeric input" name
      else [ Atom (numeric_result (List.fold_left fold init nums)) ])
  | _ -> err "%s: expected one argument" name

let distinct_values v =
  let atoms = atomize v in
  let rec dedup seen = function
    | [] -> []
    | a :: rest ->
      if List.exists (fun b -> compare_atomic a b = 0) seen then dedup seen rest
      else a :: dedup (a :: seen) rest
  in
  List.map (fun a -> Atom a) (dedup [] atoms)

let call env name (args : Value.t list) : Value.t =
  let prefix, local = strip_prefix name in
  match prefix, local, args with
  (* ---- qs: queue library (host hooks) ---- *)
  | "qs", "message", [] -> env.host.h_message ()
  | "qs", "queue", [] -> env.host.h_queue None
  | "qs", "queue", [ v ] -> env.host.h_queue (Some (one_string "qs:queue" v))
  | "qs", "property", [ v ] -> env.host.h_property (one_string "qs:property" v)
  | "qs", "slice", [] -> env.host.h_slice ()
  | "qs", "slicekey", [] -> env.host.h_slicekey ()
  | "qs", other, _ -> err "unknown qs: function qs:%s" other
  (* ---- booleans ---- *)
  | "fn", "true", [] -> bool_value true
  | "fn", "false", [] -> bool_value false
  | "fn", "not", [ v ] -> bool_value (not (ebv v))
  | "fn", "boolean", [ v ] -> bool_value (ebv v)
  (* ---- sequences ---- *)
  | "fn", "count", [ v ] -> int_value (List.length v)
  | "fn", "exists", [ v ] -> bool_value (v <> [])
  | "fn", "empty", [ v ] -> bool_value (v = [])
  | "fn", "data", [ v ] -> List.map (fun a -> Atom a) (atomize v)
  | "fn", "distinct-values", [ v ] -> distinct_values v
  | "fn", "reverse", [ v ] -> List.rev v
  | "fn", "index-of", [ v; x ] -> (
    match atomize x with
    | [ target ] ->
      List.concat
        (List.mapi
           (fun i item ->
             if compare_atomic (atomize_item item) target = 0 then
               [ Atom (Integer (i + 1)) ]
             else [])
           v)
    | _ -> err "fn:index-of: second argument must be a single atomic")
  | "fn", "subsequence", [ v; s ] ->
    let start = int_of_float (Float.round (one_number "fn:subsequence" s)) in
    List.filteri (fun i _ -> i + 1 >= start) v
  | "fn", "subsequence", [ v; s; l ] ->
    let start = int_of_float (Float.round (one_number "fn:subsequence" s)) in
    let length = int_of_float (Float.round (one_number "fn:subsequence" l)) in
    List.filteri (fun i _ -> i + 1 >= start && i + 1 < start + length) v
  | "fn", "insert-before", [ v; p; ins ] ->
    let p = max 1 (int_of_float (one_number "fn:insert-before" p)) in
    let rec go i = function
      | [] -> ins
      | x :: rest -> if i = p then ins @ (x :: rest) else x :: go (i + 1) rest
    in
    go 1 v
  | "fn", "remove", [ v; p ] ->
    let p = int_of_float (one_number "fn:remove" p) in
    List.filteri (fun i _ -> i + 1 <> p) v
  (* ---- context ---- *)
  | "fn", "position", [] -> int_value env.pos
  | "fn", "last", [] -> int_value env.size
  | "fn", "root", args ->
    (match opt_node "fn:root" (ctx_or_arg env "fn:root" args) with
     | None -> []
     | Some n -> [ Node (Tree.root_node (Tree.node_document n)) ])
  | "fn", ("name" | "local-name"), args ->
    (match opt_node "fn:name" (ctx_or_arg env "fn:name" args) with
     | None -> str_value ""
     | Some n ->
       str_value
         (match Tree.node_name n with
          | Some nm -> Demaq_xml.Name.local nm
          | None -> ""))
  (* ---- strings ---- *)
  | "fn", "string", args -> str_value (string_value (ctx_or_arg env "fn:string" args))
  | "fn", "concat", args when List.length args >= 2 ->
    str_value (String.concat "" (List.map (one_string "fn:concat") args))
  | "fn", "string-join", [ v; sep ] ->
    let sep = one_string "fn:string-join" sep in
    str_value (String.concat sep (List.map string_of_atomic (atomize v)))
  | "fn", "string-length", args ->
    int_value (String.length (string_value (ctx_or_arg env "fn:string-length" args)))
  | "fn", "contains", [ a; b ] ->
    let s = one_string "fn:contains" a and sub = one_string "fn:contains" b in
    let n = String.length sub in
    let rec find i =
      i + n <= String.length s && (String.sub s i n = sub || find (i + 1))
    in
    bool_value (n = 0 || find 0)
  | "fn", "starts-with", [ a; b ] ->
    let s = one_string "fn:starts-with" a and p = one_string "fn:starts-with" b in
    bool_value
      (String.length p <= String.length s
      && String.sub s 0 (String.length p) = p)
  | "fn", "ends-with", [ a; b ] ->
    let s = one_string "fn:ends-with" a and p = one_string "fn:ends-with" b in
    bool_value
      (String.length p <= String.length s
      && String.sub s (String.length s - String.length p) (String.length p) = p)
  | "fn", "substring", [ a; b ] ->
    str_value
      (substring (one_string "fn:substring" a) (one_number "fn:substring" b) None)
  | "fn", "substring", [ a; b; c ] ->
    str_value
      (substring (one_string "fn:substring" a) (one_number "fn:substring" b)
         (Some (one_number "fn:substring" c)))
  | "fn", "substring-before", [ a; b ] ->
    let s = one_string "fn:substring-before" a
    and sep = one_string "fn:substring-before" b in
    (match split_on_string ~sep s with
     | first :: _ :: _ -> str_value first
     | _ -> str_value "")
  | "fn", "substring-after", [ a; b ] ->
    let s = one_string "fn:substring-after" a
    and sep = one_string "fn:substring-after" b in
    (match split_on_string ~sep s with
     | _ :: (_ :: _ as rest) -> str_value (String.concat sep rest)
     | _ -> str_value "")
  | "fn", "normalize-space", args ->
    str_value (normalize_space (string_value (ctx_or_arg env "fn:normalize-space" args)))
  | "fn", "upper-case", [ v ] ->
    str_value (String.uppercase_ascii (one_string "fn:upper-case" v))
  | "fn", "lower-case", [ v ] ->
    str_value (String.lowercase_ascii (one_string "fn:lower-case" v))
  | "fn", "tokenize", [ v; sep ] ->
    let s = one_string "fn:tokenize" v and sep = one_string "fn:tokenize" sep in
    List.map (fun part -> Atom (String part)) (split_on_string ~sep s)
  | "fn", "translate", [ v; from_; to_ ] ->
    let s = one_string "fn:translate" v in
    let from_ = one_string "fn:translate" from_
    and to_ = one_string "fn:translate" to_ in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match String.index_opt from_ c with
        | Some i -> if i < String.length to_ then Buffer.add_char buf to_.[i]
        | None -> Buffer.add_char buf c)
      s;
    str_value (Buffer.contents buf)
  | "fn", "replace", [ v; pat; rep ] ->
    (* Deviation from F&O: [pat] is a literal substring, not a regex. *)
    let s = one_string "fn:replace" v in
    let pat = one_string "fn:replace" pat and rep = one_string "fn:replace" rep in
    str_value (String.concat rep (split_on_string ~sep:pat s))
  | "fn", "matches", [ v; pat ] ->
    (* Deviation from F&O: substring containment, not a regex. *)
    let s = one_string "fn:matches" v and pat = one_string "fn:matches" pat in
    bool_value (pat = "" || List.length (split_on_string ~sep:pat s) > 1)
  | "fn", "compare", [ a; b ] ->
    int_value (String.compare (one_string "fn:compare" a) (one_string "fn:compare" b))
  (* ---- numbers ---- *)
  | "fn", "number", args -> (
    match atomize (ctx_or_arg env "fn:number" args) with
    | [ a ] -> [ Atom (Decimal (number_of_atomic a)) ]
    | _ -> [ Atom (Decimal Float.nan) ])
  | "fn", "sum", _ -> aggregate "fn:sum" ( +. ) 0.0 args
  | "fn", "avg", [ v ] -> (
    match atomize v with
    | [] -> []
    | atoms ->
      let nums = List.map number_of_atomic atoms in
      if List.exists Float.is_nan nums then err "fn:avg: non-numeric input"
      else
        [ Atom
            (Decimal (List.fold_left ( +. ) 0.0 nums /. float_of_int (List.length nums)))
        ])
  | "fn", "max", [ v ] -> (
    match atomize v with
    | [] -> []
    | a :: rest ->
      [ Atom (List.fold_left (fun m x -> if compare_atomic x m > 0 then x else m) a rest) ])
  | "fn", "min", [ v ] -> (
    match atomize v with
    | [] -> []
    | a :: rest ->
      [ Atom (List.fold_left (fun m x -> if compare_atomic x m < 0 then x else m) a rest) ])
  | "fn", "abs", [ v ] -> [ Atom (numeric_result (Float.abs (one_number "fn:abs" v))) ]
  | "fn", "floor", [ v ] ->
    [ Atom (numeric_result (Float.floor (one_number "fn:floor" v))) ]
  | "fn", "ceiling", [ v ] ->
    [ Atom (numeric_result (Float.ceil (one_number "fn:ceiling" v))) ]
  | "fn", "round", [ v ] ->
    [ Atom (numeric_result (Float.round (one_number "fn:round" v))) ]
  | "fn", "deep-equal", [ a; b ] ->
    let item_eq x y =
      match x, y with
      | Atom p, Atom q -> compare_atomic p q = 0
      | Node p, Node q -> (
        match Tree.node_tree p, Tree.node_tree q with
        | Some tp, Some tq -> Tree.equal_tree tp tq
        | None, None -> Tree.string_value p = Tree.string_value q
        | _ -> false)
      | (Atom _ | Node _), _ -> false
    in
    bool_value (List.length a = List.length b && List.for_all2 item_eq a b)
  | "fn", "zero-or-one", [ v ] ->
    if List.length v <= 1 then v else err "fn:zero-or-one: more than one item"
  | "fn", "one-or-more", [ v ] ->
    if v <> [] then v else err "fn:one-or-more: empty sequence"
  | "fn", "exactly-one", [ v ] ->
    if List.length v = 1 then v else err "fn:exactly-one: not a singleton"
  (* ---- environment ---- *)
  | "fn", "current-dateTime", [] -> int_value (env.host.h_now ())
  | "fn", "collection", [ v ] ->
    env.host.h_collection (one_string "fn:collection" v)
  | "fn", "trace", [ v; label ] ->
    (* identity with a side-channel: the classic F&O debugging hook *)
    Logs.debug (fun f ->
        f "fn:trace %s: %s" (one_string "fn:trace" label)
          (String.concat ", " (List.map string_of_atomic (atomize v))));
    v
  | "fn", "error", [] -> err "fn:error()"
  | "fn", "error", [ v ] -> err "%s" (one_string "fn:error" v)
  | _, _, _ ->
    err "unknown function %s#%d" name (List.length args)

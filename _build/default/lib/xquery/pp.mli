(** Pretty-printer for the expression AST.

    Output is valid QML surface syntax: printing an expression and parsing
    the result yields a semantically equivalent expression (exercised by
    the parse/print round-trip tests). Used by the plan [explain]
    output. *)

val pp : Format.formatter -> Ast.expr -> unit
val to_string : Ast.expr -> string

val seq_type_name : Ast.seq_type -> string
(** The surface syntax of a sequence type, e.g. ["element(b)+"] . *)

val binop_name : Ast.binop -> string
val axis_name : Ast.axis -> string
val test_name : Ast.node_test -> string

(* Dynamic evaluation context.

   The [host] record is how the engine exposes the qs: function library
   (§3.4/§3.5) without making the XQuery library depend on the queue
   subsystem: the engine installs closures over its store when it
   evaluates a rule. *)

module Smap = Map.Make (String)

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type host = {
  h_queue : string option -> Value.t;
      (* [qs:queue()] / [qs:queue("name")]: document nodes of all messages *)
  h_message : unit -> Value.t;  (* [qs:message()] *)
  h_property : string -> Value.t;  (* [qs:property("name")] *)
  h_slice : unit -> Value.t;  (* [qs:slice()], slicing rules only *)
  h_slicekey : unit -> Value.t;  (* [qs:slicekey()], slicing rules only *)
  h_collection : string -> Value.t;  (* [fn:collection("name")]: master data *)
  h_now : unit -> int;  (* virtual-clock tick for fn:current-dateTime *)
}

let null_host =
  let no name _ = eval_error "%s is not available in this context" name in
  {
    h_queue = no "qs:queue";
    h_message = no "qs:message";
    h_property = no "qs:property";
    h_slice = no "qs:slice";
    h_slicekey = no "qs:slicekey";
    h_collection = no "fn:collection";
    h_now = (fun () -> 0);
  }

type env = {
  item : Value.item option;  (* context item, if any *)
  pos : int;  (* fn:position() *)
  size : int;  (* fn:last() *)
  vars : Value.t Smap.t;
  host : host;
  updates : Update.t list ref;  (* pending update accumulator *)
}

let make ?(host = null_host) ?item () =
  { item; pos = 1; size = 1; vars = Smap.empty; host; updates = ref [] }

let with_item env item pos size = { env with item = Some item; pos; size }
let bind env name value = { env with vars = Smap.add name value env.vars }

let lookup env name =
  match Smap.find_opt name env.vars with
  | Some v -> v
  | None -> eval_error "undefined variable $%s" name

let context_item env =
  match env.item with
  | Some it -> it
  | None -> eval_error "the context item is undefined"

let context_node env =
  match context_item env with
  | Value.Node n -> n
  | Value.Atom _ -> eval_error "the context item is not a node"

let emit env u = env.updates := u :: !(env.updates)
let pending env = List.rev !(env.updates)

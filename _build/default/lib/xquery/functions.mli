(** The built-in function library: the [fn:] functions used by Demaq rules
    plus the [qs:] queue access functions (dispatched to the
    {!Context.host} hooks).

    An unprefixed function name defaults to the [fn:] namespace, following
    XQuery's default function namespace convention.

    Documented deviations from XQuery 1.0 F&O:
    - [fn:current-dateTime] returns the engine's virtual-clock tick as an
      integer rather than an [xs:dateTime];
    - [fn:tokenize], [fn:replace] and [fn:matches] treat their pattern as a
      literal substring, not a regular expression. *)

val call : Context.env -> string -> Value.t list -> Value.t
(** [call env name args] applies a built-in function.
    @raise Context.Eval_error for unknown names, wrong arity, or argument
    type errors. *)

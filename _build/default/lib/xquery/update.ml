(* Pending update primitives (XQuery Update Facility style, extended with
   the Demaq queue primitives). Rule evaluation produces a list of these;
   nothing is applied until the whole rule set has been evaluated, which
   gives the snapshot semantics of §3.1. *)

type t =
  | Enqueue of {
      payload : Demaq_xml.Tree.tree;
      queue : string;
      props : (string * Value.atomic) list;
    }
  | Reset of { slicing : string option; key : Value.atomic option }

let pp fmt = function
  | Enqueue { payload; queue; props } ->
    Format.fprintf fmt "enqueue %a into %s" Demaq_xml.Tree.pp_tree payload queue;
    List.iter
      (fun (k, v) ->
        Format.fprintf fmt " with %s value %s" k (Value.string_of_atomic v))
      props
  | Reset { slicing = None; _ } -> Format.fprintf fmt "reset"
  | Reset { slicing = Some s; key } ->
    Format.fprintf fmt "reset slicing %s key %s" s
      (match key with Some k -> Value.string_of_atomic k | None -> "?")

(** Evaluator for the QML expression language.

    Evaluation is side-effect free with respect to the message store: the
    update primitives ([do enqueue], [do reset]) only append to the pending
    update list in the environment (snapshot semantics, §3.1 of the paper).
    The engine applies the pending list after all rules have run. *)

exception Eval_error of string
(** Re-export of {!Context.Eval_error} for convenience. *)

val eval : Context.env -> Ast.expr -> Value.t
(** @raise Context.Eval_error on dynamic errors (undefined variables,
    type errors, unknown functions, ...). *)

val eval_with_updates : Context.env -> Ast.expr -> Value.t * Update.t list
(** Evaluate with a fresh pending-update list and return the updates
    produced by this expression only. *)

val node_of_tree : Demaq_xml.Tree.tree -> Demaq_xml.Tree.node
(** Wrap a bare tree as the root element node of a fresh document, e.g. to
    use a constructed or parsed message as a context item. *)

val doc_node_of_tree : Demaq_xml.Tree.tree -> Demaq_xml.Tree.node
(** Wrap a bare tree as a fresh document and return the document node.
    This is what [qs:message()] and [qs:queue()] hand to rules (§3.4 of
    the paper: "the document node of the currently processed message"). *)

val run :
  ?host:Context.host ->
  ?vars:(string * Value.t) list ->
  ?context:Demaq_xml.Tree.tree ->
  string ->
  Value.t * Update.t list
(** One-shot convenience: parse and evaluate [expr] with the given context
    tree as context item. *)

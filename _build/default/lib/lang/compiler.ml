(* The rule compiler (§4.4.1).

   On deployment, the compiler groups rules by the queue (or slicing) they
   are attached to and rewrites their bodies:

   - fixed-property inlining: a call [qs:property("p")] where [p] is a
     fixed property with a value expression for the rule's queue is
     replaced by that expression (the paper: "similar to conventional view
     merging, fixed properties are inlined");
   - default-parameter supply: [qs:queue()] becomes
     [qs:queue("<this queue>")] so the plan no longer depends on implicit
     rule context;
   - constant folding of literal boolean/arithmetic subexpressions.

   It can additionally merge all rule bodies of a queue into a single
   sequence expression ("the rule bodies are combined into a single query
   by concatenating all pending actions into a single sequence") — the
   engine evaluates either per-rule plans (precise error attribution) or
   the merged plan (benchmark B2 measures the difference). *)

module Ast = Demaq_xquery.Ast
module Value = Demaq_xquery.Value
module Defs = Demaq_mq.Defs

type compiled_rule = {
  cr_name : string;
  cr_error_queue : string option;
  cr_body : Ast.expr;  (* rewritten *)
  cr_original : Ast.expr;
  cr_requirements : string list;
      (* element names the triggering message must contain for the rule to
         possibly fire (condition pre-filtering, §4.4.1); empty = always
         evaluate *)
}

type plan = {
  target : string;
  on_slicing : bool;
  rules : compiled_rule list;
  merged : Ast.expr;  (* all rule bodies as one sequence *)
}

type t = {
  plans : (string, plan) Hashtbl.t;  (* by target *)
  program : Qdl.program;
}

(* ---- rewrites ---- *)

let literal_of_value = function
  | [ Value.Atom a ] -> Some (Ast.Literal a)
  | [] -> Some Ast.Empty_seq
  | _ -> None

let fold_constants expr =
  Ast.map_expr
    (fun e ->
      match e with
      | Ast.Binary (op, Ast.Literal a, Ast.Literal b) -> (
        let la = [ Value.Atom a ] and lb = [ Value.Atom b ] in
        match op with
        | Ast.And -> Ast.Literal (Value.Boolean (Value.ebv la && Value.ebv lb))
        | Ast.Or -> Ast.Literal (Value.Boolean (Value.ebv la || Value.ebv lb))
        | Ast.Gen_cmp c -> Ast.Literal (Value.Boolean (Value.general_compare c la lb))
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Idiv | Ast.Mod -> (
          let aop =
            match op with
            | Ast.Add -> `Add | Ast.Sub -> `Sub | Ast.Mul -> `Mul
            | Ast.Div -> `Div | Ast.Idiv -> `Idiv | _ -> `Mod
          in
          match Value.arith aop la lb with
          | v -> Option.value ~default:e (literal_of_value v)
          | exception Value.Type_error _ -> e)
        | _ -> e)
      | Ast.If (Ast.Literal (Value.Boolean true), t, _) -> t
      | Ast.If (Ast.Literal (Value.Boolean false), _, el) -> el
      | Ast.Call ("fn:not", [ Ast.Literal (Value.Boolean b) ])
      | Ast.Call ("not", [ Ast.Literal (Value.Boolean b) ]) ->
        Ast.Literal (Value.Boolean (not b))
      | e -> e)
    expr

(* Inline fixed properties: only safe for rules on a physical queue (the
   property expression for that specific queue is known statically). *)
let inline_fixed_properties properties queue expr =
  Ast.map_expr
    (fun e ->
      match e with
      | Ast.Call (("qs:property" | "property"), [ Ast.Literal (Value.String pname) ]) -> (
        match
          List.find_opt
            (fun p -> p.Defs.pname = pname && p.Defs.disposition = Defs.Fixed)
            properties
        with
        | Some p -> (
          match Defs.property_expr_for p queue with
          | Some value_expr ->
            (* The property value is the expression evaluated against the
               message body, atomized and cast; inline the expression and
               keep the cast via fn:string/number as appropriate. *)
            (match p.Defs.ptype with
             | Value.T_string -> Ast.Call ("fn:string", [ value_expr ])
             | Value.T_integer | Value.T_decimal -> Ast.Call ("fn:number", [ value_expr ])
             | Value.T_boolean -> Ast.Call ("fn:boolean", [ value_expr ]))
          | None -> e)
        | None -> e)
      | e -> e)
    expr

let supply_queue_default queue expr =
  Ast.map_expr
    (fun e ->
      match e with
      | Ast.Call (("qs:queue" | "queue") as f, []) ->
        Ast.Call (f, [ Ast.Literal (Value.String queue) ])
      | e -> e)
    expr

(* Group [if (c) then a_i else b_i] bodies by structurally equal condition,
   preserving the first-occurrence order of conditions and the relative
   order of the actions under each. Rules are independent ECA reactions,
   so reordering whole rule bodies is sound; the pending-update order
   within one rule is preserved. *)
let factor_conditions bodies =
  let groups : (Ast.expr option * Ast.expr list ref) list ref = ref [] in
  let condition_of = function
    | Ast.If (c, _, _) -> Some c
    | _ -> None
  in
  List.iter
    (fun body ->
      let cond = condition_of body in
      match List.find_opt (fun (c, _) -> c = cond && c <> None) !groups with
      | Some (_, bucket) -> bucket := body :: !bucket
      | None -> groups := !groups @ [ (cond, ref [ body ]) ])
    bodies;
  let merged_group (cond, bucket) =
    match cond, List.rev !bucket with
    | Some c, (_ :: _ :: _ as members) ->
      (* several rules share the condition: evaluate it once *)
      let thens = List.map (function Ast.If (_, t, _) -> t | e -> e) members in
      let elses =
        List.filter_map
          (function Ast.If (_, _, Ast.Empty_seq) -> None | Ast.If (_, _, e) -> Some e | _ -> None)
          members
      in
      let else_branch =
        match elses with [] -> Ast.Empty_seq | es -> Ast.Sequence es
      in
      [ Ast.If (c, Ast.Sequence thens, else_branch) ]
    | _, members -> members
  in
  Ast.Sequence (List.concat_map merged_group !groups)

(* ---- compilation ---- *)

let compile_rule ~properties ~on_slicing ~target (r : Qdl.rule_def) =
  let body = r.Qdl.body in
  let body = if on_slicing then body else supply_queue_default target body in
  let body = if on_slicing then body else inline_fixed_properties properties target body in
  let body = fold_constants body in
  {
    cr_name = r.Qdl.rname;
    cr_error_queue = r.Qdl.rule_error_queue;
    cr_body = body;
    cr_original = r.Qdl.body;
    cr_requirements = Prefilter.rule_requirements body;
  }

let compile ?(optimize = true) (program : Qdl.program) : t =
  let slicing_names = List.map (fun s -> s.Defs.sname) (Qdl.slicings program) in
  let properties = Qdl.properties program in
  let plans = Hashtbl.create 16 in
  List.iter
    (fun (r : Qdl.rule_def) ->
      let target = r.Qdl.target in
      let on_slicing = List.mem target slicing_names in
      let compiled =
        if optimize then compile_rule ~properties ~on_slicing ~target r
        else
          {
            cr_name = r.Qdl.rname;
            cr_error_queue = r.Qdl.rule_error_queue;
            cr_body = r.Qdl.body;
            cr_original = r.Qdl.body;
            cr_requirements = [];
          }
      in
      let plan =
        match Hashtbl.find_opt plans target with
        | Some p -> { p with rules = p.rules @ [ compiled ] }
        | None -> { target; on_slicing; rules = [ compiled ]; merged = Ast.Empty_seq }
      in
      Hashtbl.replace plans target plan)
    (Qdl.rules program);
  (* Build the merged plan per target, factoring identical conditions:
     §3.3 makes every rule body a conditional expression precisely "to
     facilitate the detection and optimization of conditions by the rule
     compiler". Rules of one queue that test the same condition share a
     single evaluation of it in the merged plan. *)
  Hashtbl.iter
    (fun target plan ->
      let merged =
        if optimize then factor_conditions (List.map (fun r -> r.cr_body) plan.rules)
        else Ast.Sequence (List.map (fun r -> r.cr_body) plan.rules)
      in
      Hashtbl.replace plans target { plan with merged })
    plans;
  { plans; program }

let plan_for t target = Hashtbl.find_opt t.plans target
let source_program t = t.program

let plans t =
  List.sort
    (fun a b -> compare a.target b.target)
    (Hashtbl.fold (fun _ p acc -> p :: acc) t.plans [])

let explain t =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "plan for %s%s (%d rule%s):\n" p.target
           (if p.on_slicing then " [slicing]" else "")
           (List.length p.rules)
           (if List.length p.rules = 1 then "" else "s"));
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "  rule %s%s%s:\n    %s\n" r.cr_name
               (match r.cr_error_queue with
                | Some q -> " (errors -> " ^ q ^ ")"
                | None -> "")
               (match r.cr_requirements with
                | [] -> ""
                | names -> " [requires <" ^ String.concat ">, <" names ^ ">]")
               (Demaq_xquery.Pp.to_string r.cr_body)))
        p.rules)
    (plans t);
  Buffer.contents buf

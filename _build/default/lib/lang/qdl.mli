(** Parser for Demaq application programs: QDL declarations (queues,
    properties, slicings) and QML rules, in the concrete syntax of the
    paper. A program is a sequence of [create] statements:

    {v
    create queue finance kind basic mode persistent
    create queue supplier kind outgoingGateway mode persistent
      interface supplier.wsdl port CapacityRequestPort
      using WS-ReliableMessaging policy wsrmpol.xml
    create queue echoQueue kind echo mode persistent
    create property orderID as xs:string fixed
      queue order value //orderID
      queue confirmation value /confirmedOrder/ID
    create slicing orders on orderID
    create rule joinOrder for requestMsgs if (...) then ... else ...
    v}

    Extensions beyond the listings in the paper (the paper names the
    features but shows no concrete syntax): [priority <int>] and
    [errorqueue <name>] and [schema { ... }] options on queues; the schema
    body uses {!Demaq_xml.Schema}'s textual syntax. *)

type rule_def = {
  rname : string;
  target : string;  (** queue or slicing name *)
  rule_error_queue : string option;
  body : Demaq_xquery.Ast.expr;
}

type statement =
  | Create_queue of Demaq_mq.Defs.queue_def
  | Create_property of Demaq_mq.Defs.property_def
  | Create_slicing of Demaq_mq.Defs.slicing_def
  | Create_rule of rule_def
  | Drop_rule of string
      (** [drop rule <name>]: only meaningful in evolution scripts applied
          to a running server (paper §5, "dynamic queue and rule
          evolution") *)

type program = statement list

exception Qdl_error of string

val parse_program : string -> program
(** @raise Qdl_error with position information on malformed input. *)

val parse_program_result : string -> (program, string) result

val queues : program -> Demaq_mq.Defs.queue_def list
val properties : program -> Demaq_mq.Defs.property_def list
val slicings : program -> Demaq_mq.Defs.slicing_def list
val rules : program -> rule_def list

lib/lang/analysis.mli: Demaq_xquery Format Qdl

lib/lang/qdl.ml: Demaq_mq Demaq_xml Demaq_xquery Format List Printf

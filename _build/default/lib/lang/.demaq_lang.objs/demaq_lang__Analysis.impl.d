lib/lang/analysis.ml: Demaq_mq Demaq_xquery Format List Qdl

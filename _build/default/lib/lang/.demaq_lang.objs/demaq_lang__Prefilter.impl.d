lib/lang/prefilter.ml: Demaq_xml Demaq_xquery List Set String

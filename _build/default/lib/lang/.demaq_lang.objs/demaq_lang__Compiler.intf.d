lib/lang/compiler.mli: Demaq_xquery Qdl

lib/lang/qdl.mli: Demaq_mq Demaq_xquery

lib/lang/compiler.ml: Buffer Demaq_mq Demaq_xquery Hashtbl List Option Prefilter Printf Qdl String

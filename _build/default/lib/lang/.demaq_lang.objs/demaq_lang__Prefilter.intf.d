lib/lang/prefilter.mli: Demaq_xml Demaq_xquery Set

(** Static semantic analysis of a Demaq program.

    Checks performed before deployment:
    - name resolution: rule targets, enqueue targets, property queues,
      slicing properties and error queues must exist; no duplicates;
    - context restrictions from the paper: [qs:slice()]/[qs:slicekey()]
      only in rules attached to slicings (§3.5.2); WS-ReliableMessaging
      requires persistence (§2.1.2);
    - free variables in rule bodies (guaranteed runtime errors);
    - [drop rule] statements are rejected outside evolution scripts;
    - a warning for rules that can never produce an update. *)

type severity = Error | Warning

type diagnostic = { severity : severity; where : string; message : string }

val pp_diagnostic : Format.formatter -> diagnostic -> unit

type result = {
  diagnostics : diagnostic list;
  ok : bool;  (** no errors (warnings allowed) *)
}

val analyze : Qdl.program -> result

val free_variables : Demaq_xquery.Ast.expr -> string list
(** Variables referenced but not bound by any enclosing FLWOR or
    quantifier clause, sorted and deduplicated. *)

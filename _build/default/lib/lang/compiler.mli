(** The rule compiler (§4.4.1).

    On deployment the compiler groups rules by their target queue or
    slicing and rewrites their bodies:

    - {e fixed-property inlining}: [qs:property("p")] for a fixed property
      becomes its value expression for the rule's queue ("similar to
      conventional view merging, fixed properties are inlined");
    - {e default-parameter supply}: [qs:queue()] becomes
      [qs:queue("<this queue>")];
    - {e constant folding} of literal subexpressions;
    - {e condition pre-filter extraction} ({!Prefilter}): the element
      names a rule's condition requires of the triggering message;
    - {e merged plans with shared-condition factoring}: all rule bodies of
      a target concatenated into one sequence expression, with rules that
      test structurally identical conditions sharing a single evaluation
      (§3.3 motivates the mandatory conditional shape of rule bodies with
      exactly this optimization). *)

type compiled_rule = {
  cr_name : string;
  cr_error_queue : string option;  (** rule-level error queue (§3.6) *)
  cr_body : Demaq_xquery.Ast.expr;  (** rewritten *)
  cr_original : Demaq_xquery.Ast.expr;  (** as written *)
  cr_requirements : string list;
      (** element names the triggering message must contain for the rule
          to possibly fire; empty = always evaluate *)
}

type plan = {
  target : string;  (** queue or slicing name *)
  on_slicing : bool;
  rules : compiled_rule list;  (** declaration order *)
  merged : Demaq_xquery.Ast.expr;  (** the single merged plan *)
}

type t

val compile : ?optimize:bool -> Qdl.program -> t
(** [optimize:false] keeps rule bodies verbatim (benchmarks B2/B8). *)

val plan_for : t -> string -> plan option
val plans : t -> plan list
(** All plans, sorted by target name. *)

val source_program : t -> Qdl.program
(** The program the plans were compiled from (used by runtime
    evolution). *)

val explain : t -> string
(** Human-readable plan dump, including per-rule error queues and
    pre-filter requirements. *)

val factor_conditions : Demaq_xquery.Ast.expr list -> Demaq_xquery.Ast.expr
(** Merge rule bodies, evaluating structurally identical top-level
    conditions once. Exposed for tests. *)

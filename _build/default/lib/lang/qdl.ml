module P = Demaq_xquery.Parser
module Value = Demaq_xquery.Value
module Defs = Demaq_mq.Defs
module Schema = Demaq_xml.Schema

type rule_def = {
  rname : string;
  target : string;
  rule_error_queue : string option;
  body : Demaq_xquery.Ast.expr;
}

type statement =
  | Create_queue of Defs.queue_def
  | Create_property of Defs.property_def
  | Create_slicing of Defs.slicing_def
  | Create_rule of rule_def
  | Drop_rule of string

type program = statement list

exception Qdl_error of string

let fail src st fmt =
  Format.kasprintf
    (fun msg ->
      raise (Qdl_error (Printf.sprintf "%s (%s)" msg (P.error_position src (P.state_pos st)))))
    fmt

let expect src st kw =
  if not (P.accept_name st kw) then fail src st "expected keyword '%s'" kw

let parse_kind src st =
  match P.read_name st with
  | "basic" -> Defs.Basic
  | "incomingGateway" -> Defs.Incoming_gateway
  | "outgoingGateway" -> Defs.Outgoing_gateway
  | "echo" -> Defs.Echo
  | k -> fail src st "unknown queue kind: %s" k

let parse_mode src st =
  match P.read_name st with
  | "persistent" -> Defs.Persistent
  | "transient" -> Defs.Transient
  | m -> fail src st "unknown queue mode: %s" m

let parse_queue src st =
  let qname = P.read_name st in
  expect src st "kind";
  let kind = parse_kind src st in
  expect src st "mode";
  let mode = parse_mode src st in
  let priority = ref 0 in
  let schema = ref None in
  let interface = ref None in
  let port = ref None in
  let extensions = ref [] in
  let error_queue = ref None in
  let rec options () =
    match P.peek_name st with
    | Some "priority" ->
      ignore (P.accept_name st "priority");
      priority := P.read_int st;
      options ()
    | Some "schema" ->
      ignore (P.accept_name st "schema");
      let text = P.read_braced_raw st in
      (match Schema.parse text with
       | Ok s -> schema := Some s
       | Error e -> fail src st "bad schema for queue %s: %s" qname e);
      options ()
    | Some "interface" ->
      ignore (P.accept_name st "interface");
      interface := Some (P.read_name st);
      expect src st "port";
      port := Some (P.read_name st);
      options ()
    | Some "using" ->
      ignore (P.accept_name st "using");
      let ext = P.read_name st in
      expect src st "policy";
      let policy = P.read_name st in
      extensions := (ext, policy) :: !extensions;
      options ()
    | Some "errorqueue" ->
      ignore (P.accept_name st "errorqueue");
      error_queue := Some (P.read_name st);
      options ()
    | _ -> ()
  in
  options ();
  {
    Defs.qname;
    kind;
    mode;
    priority = !priority;
    schema = !schema;
    interface = !interface;
    port = !port;
    extensions = List.rev !extensions;
    error_queue = !error_queue;
  }

let parse_property src st =
  let pname = P.read_name st in
  expect src st "as";
  let tyname = P.read_name st in
  let ptype =
    match Value.atomic_type_of_string tyname with
    | Ok ty -> ty
    | Error e -> fail src st "%s" e
  in
  let disposition =
    if P.accept_name st "fixed" then Defs.Fixed
    else if P.accept_name st "inherited" then Defs.Inherited
    else Defs.Free
  in
  let rec groups acc =
    if P.accept_name st "queue" then begin
      let rec names acc =
        let n = P.read_name st in
        if P.accept_punct st "," then names (n :: acc) else List.rev (n :: acc)
      in
      let queue_names = names [] in
      expect src st "value";
      let expr = P.parse_expr_single st in
      groups ((queue_names, expr) :: acc)
    end
    else List.rev acc
  in
  let per_queue = groups [] in
  if per_queue = [] then
    fail src st "property %s: expected at least one 'queue ... value ...' group" pname;
  { Defs.pname; ptype; disposition; per_queue }

let parse_slicing src st =
  let sname = P.read_name st in
  expect src st "on";
  let slice_property = P.read_name st in
  { Defs.sname; slice_property }

let parse_rule _src st =
  let rname = P.read_name st in
  if not (P.accept_name st "for") then
    raise (Qdl_error (Printf.sprintf "rule %s: expected 'for'" rname));
  let target = P.read_name st in
  let rule_error_queue =
    if P.accept_name st "errorqueue" then Some (P.read_name st) else None
  in
  let body = P.parse_expr_single st in
  { rname; target; rule_error_queue; body }

let parse_program src =
  let st = P.state_of_string src in
  let rec go acc =
    if P.at_eof st then List.rev acc
    else if P.accept_name st "drop" then begin
      expect src st "rule";
      go (Drop_rule (P.read_name st) :: acc)
    end
    else begin
      expect src st "create";
      match P.read_name st with
      | "queue" -> go (Create_queue (parse_queue src st) :: acc)
      | "property" -> go (Create_property (parse_property src st) :: acc)
      | "slicing" -> go (Create_slicing (parse_slicing src st) :: acc)
      | "rule" -> go (Create_rule (parse_rule src st) :: acc)
      | other -> fail src st "cannot create '%s' (expected queue, property, slicing or rule)" other
    end
  in
  try go [] with
  | P.Syntax_error { pos; msg } ->
    raise (Qdl_error (Printf.sprintf "%s (%s)" msg (P.error_position src pos)))

let parse_program_result src =
  match parse_program src with
  | p -> Ok p
  | exception Qdl_error msg -> Error msg

let queues p = List.filter_map (function Create_queue q -> Some q | _ -> None) p
let properties p = List.filter_map (function Create_property q -> Some q | _ -> None) p
let slicings p = List.filter_map (function Create_slicing s -> Some s | _ -> None) p
let rules p = List.filter_map (function Create_rule r -> Some r | _ -> None) p

(** SOAP 1.2-style envelopes for gateway traffic (§4.2: "Demaq provides
    SOAP bindings to transport protocols such as HTTP and SMTP").

    The simulated transport exchanges serialized envelopes so the gateway
    path exercises real XML serialization and parsing on both sides. *)

val soap_ns : string

val envelope :
  ?headers:Demaq_xml.Tree.tree list -> Demaq_xml.Tree.tree -> Demaq_xml.Tree.tree
(** Wrap a payload in [<Envelope><Header>…</Header><Body>…</Body>]. *)

val header_field : string -> string -> Demaq_xml.Tree.tree
(** A simple text-valued header element. *)

val body : Demaq_xml.Tree.tree -> Demaq_xml.Tree.tree
(** The single payload of an envelope's [<Body>]; non-envelope trees pass
    through unchanged (plain-XML transport). *)

val headers : Demaq_xml.Tree.tree -> Demaq_xml.Tree.tree list

val fault : code:string -> reason:string -> Demaq_xml.Tree.tree
val is_fault : Demaq_xml.Tree.tree -> bool

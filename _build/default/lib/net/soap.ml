(* SOAP 1.2-style envelopes for gateway traffic (§4.2: "Demaq provides
   SOAP bindings to transport protocols such as HTTP and SMTP"). The
   simulated transport exchanges serialized envelopes so that the gateway
   path exercises real serialization and parsing. *)

module Tree = Demaq_xml.Tree
module Name = Demaq_xml.Name

let soap_ns = "http://www.w3.org/2003/05/soap-envelope"

let envelope ?(headers = []) body =
  Tree.elem_ns
    (Name.make ~uri:soap_ns "Envelope")
    [
      Tree.elem_ns (Name.make ~uri:soap_ns "Header") headers;
      Tree.elem_ns (Name.make ~uri:soap_ns "Body") [ body ];
    ]

let header_field name value =
  Tree.elem name [ Tree.text value ]

(* Extract the (single) body payload of an envelope; returns the input
   unchanged when it is not a SOAP envelope (plain-XML transport). *)
let body tree =
  match tree with
  | Tree.Element e when Name.local e.Tree.name = "Envelope" -> (
    match Tree.find_child tree "Body" with
    | Some b -> (
      match Tree.child_elements b with
      | [ payload ] -> payload
      | _ -> tree)
    | None -> tree)
  | t -> t

let headers tree =
  match Tree.find_child tree "Header" with
  | Some h -> Tree.child_elements h
  | None -> []

let fault ~code ~reason =
  Tree.elem_ns
    (Name.make ~uri:soap_ns "Fault")
    [
      Tree.elem "Code" [ Tree.text code ];
      Tree.elem "Reason" [ Tree.text reason ];
    ]

let is_fault tree =
  match Tree.element_name (body tree) with
  | Some n -> Name.local n = "Fault"
  | None -> false

(* A miniature WSDL 1.1 model (§2.1.2: gateway queues "import the
   supplier's interface definition from a WSDL file"). Enough structure to
   make the [interface <file> port <name>] declaration functional: the
   engine validates that messages leaving through a gateway are valid
   inputs of an operation of the declared port.

   Accepted document shape (namespaces ignored, local names only):

   {v
   <definitions name="SupplierService">
     <portType name="CapacityRequestPort">
       <operation name="requestCapacity">
         <input element="capacityRequest"/>
         <output element="capacityResult"/>
       </operation>
     </portType>
   </definitions>
   v} *)

module Tree = Demaq_xml.Tree
module Name = Demaq_xml.Name

type operation = {
  op_name : string;
  input_element : string option;
  output_element : string option;
}

type port = { port_name : string; operations : operation list }

type t = { service : string; ports : port list }

let local tree =
  match Tree.element_name tree with Some n -> Name.local n | None -> ""

let attr tree name = Tree.attribute_value tree name

let parse_tree tree =
  if local tree <> "definitions" then Error "WSDL: expected <definitions>"
  else begin
    let ports =
      List.filter_map
        (fun pt ->
          if local pt <> "portType" then None
          else
            match attr pt "name" with
            | None -> None
            | Some port_name ->
              let operations =
                List.filter_map
                  (fun op ->
                    if local op <> "operation" then None
                    else
                      match attr op "name" with
                      | None -> None
                      | Some op_name ->
                        let element_of tag =
                          Option.bind (Tree.find_child op tag) (fun io ->
                              attr io "element")
                        in
                        Some
                          {
                            op_name;
                            input_element = element_of "input";
                            output_element = element_of "output";
                          })
                  (Tree.child_elements pt)
              in
              Some { port_name; operations })
        (Tree.child_elements tree)
    in
    if ports = [] then Error "WSDL: no portType definitions"
    else
      Ok { service = Option.value ~default:"" (attr tree "name"); ports }
  end

let parse text =
  match Demaq_xml.Parser.parse text with
  | tree -> parse_tree tree
  | exception Demaq_xml.Parser.Parse_error { line; col; msg } ->
    Error (Printf.sprintf "WSDL: XML error at %d:%d: %s" line col msg)

let find_port t name = List.find_opt (fun p -> p.port_name = name) t.ports

(* Is a message with the given root element a valid input of some
   operation of the port? *)
let accepts_input port root_element =
  List.exists (fun op -> op.input_element = Some root_element) port.operations

let input_elements port =
  List.filter_map (fun op -> op.input_element) port.operations

let expected_inputs port = String.concat ", " (input_elements port)

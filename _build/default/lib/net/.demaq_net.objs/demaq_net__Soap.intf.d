lib/net/soap.mli: Demaq_xml

lib/net/wsdl.mli: Demaq_xml

lib/net/network.ml: Demaq_xml Hashtbl List Printf Random Soap String

lib/net/wsdl.ml: Demaq_xml List Option Printf String

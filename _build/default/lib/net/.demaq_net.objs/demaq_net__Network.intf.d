lib/net/network.mli: Demaq_xml

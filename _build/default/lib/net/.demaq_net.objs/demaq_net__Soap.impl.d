lib/net/soap.ml: Demaq_xml

(** A miniature WSDL 1.1 model (§2.1.2: gateway queues "import the
    supplier's interface definition from a WSDL file").

    Covers exactly what makes the QDL [interface <file> port <name>]
    declaration functional: named port types whose operations declare
    input/output message elements. Namespaces are ignored (local names
    only). *)

type operation = {
  op_name : string;
  input_element : string option;  (** root element of the request *)
  output_element : string option;
}

type port = { port_name : string; operations : operation list }

type t = { service : string; ports : port list }

val parse : string -> (t, string) result
(** Parse a [<definitions>] document. *)

val parse_tree : Demaq_xml.Tree.tree -> (t, string) result

val find_port : t -> string -> port option

val accepts_input : port -> string -> bool
(** Is a message with this root element a valid input of some operation of
    the port? *)

val input_elements : port -> string list
val expected_inputs : port -> string
(** Comma-separated {!input_elements}, for error messages. *)
